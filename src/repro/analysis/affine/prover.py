"""The affine in-bounds prover: IP011/IP012 at mesh-independent cost.

Walks each function **once**, binding every loop induction variable to a
symbolic variable constrained by the loop bounds (plus a stride
constraint for non-unit steps) instead of enumerating the tile grid the
way :class:`~repro.analysis.absint.engine.AbstractEvaluator` does. Index
expressions evaluate to piecewise-affine values
(:class:`~repro.analysis.affine.pwaff.PwAff`) — ``min``/``max`` window
arithmetic splits into exact affine cases — and every access footprint
is decided by a handful of integer emptiness tests:

* every piece provably inside ``[0, extent)`` → *decided*, with the
  exact attained hull recorded for the checked interpreter's oracle;
* a reachable piece provably escaping, in an exactly-modelled context →
  an ``IP011``/``IP012`` violation;
* anything non-affine (data-dependent bounds, products of variables,
  piece blow-ups) → *undecided*: the caller falls back to the
  enumerating interval engine for exactly those ops.

Loop bounds built from pure ``min``/``max`` trees over affine leaves
(the tiling pass's window arithmetic) are decomposed structurally, so
``iv < min(a, b)`` contributes the two conjuncts ``iv < a`` and
``iv < b`` without forking the domain. Bounds that do not decompose
degrade to their constant hull (the same over-approximation the
interval engine applies), marking the context inexact so failed proofs
report "undecided", never a spurious violation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.absint.interval import Box, Interval, box_join, box_str
from repro.analysis.affine.pwaff import (
    PROVEN,
    UNKNOWN,
    VIOLATES,
    PwAff,
    hull,
    prove_ge0,
    prove_lt,
)
from repro.analysis.affine.sets import AffineSet, AffineUnknown, LinExpr
from repro.analysis.diagnostics import Diagnostic
from repro.ir.attributes import IntegerAttr
from repro.ir.dataflow import ForwardDataflowWalker
from repro.ir.location import op_excerpt, op_path
from repro.ir.operation import Operation
from repro.ir.types import MemRefType, TensorType
from repro.ir.values import OpResult, Value


class ProofReport:
    """What one prover sweep decided (aggregated over all functions)."""

    def __init__(self) -> None:
        #: id(op) -> exact attained access hull (parity with the
        #: interval engine's ``InBoundsChecker.proven``).
        self.proven: Dict[int, Box] = {}
        #: (id(op), code) -> violation diagnostic, for ops whose escape
        #: is provable and whose context is exactly modelled.
        self.violations: Dict[Tuple[int, str], Diagnostic] = {}
        #: id(op) -> reason the symbolic engine could not decide it.
        self.undecided: Dict[int, str] = {}
        #: id(op) -> the op itself, for the ops in :attr:`undecided`
        #: (so callers can attach diagnostics to the fallback sites).
        self.undecided_ops: Dict[int, "Operation"] = {}
        #: Number of access ops inspected.
        self.checked: int = 0

    @property
    def decided_ids(self) -> set:
        ids = set(self.proven)
        ids.update(op_id for op_id, _ in self.violations)
        return ids

    def diagnostics(self) -> List[Diagnostic]:
        return list(self.violations.values())


class AffineProver(ForwardDataflowWalker):
    """Symbolic single-walk in-bounds proofs for one function body."""

    def __init__(self, report: ProofReport) -> None:
        self.report = report
        #: id(Value) -> symbolic value of an index-typed SSA value.
        self.env: Dict[int, PwAff] = {}
        #: id(Value) -> per-dim symbolic extents of a shaped value.
        self.extent_env: Dict[int, Tuple[PwAff, ...]] = {}
        #: Conjunction of every enclosing loop's bound constraints.
        self.domain: AffineSet = AffineSet.universe()
        #: > 0 while some enclosing loop was over-approximated; failed
        #: proofs are then "undecided", never claimed violations.
        self.inexact_depth = 0
        self._fresh = 0

    # ---- plumbing --------------------------------------------------------

    def fresh(self, stem: str) -> str:
        self._fresh += 1
        return f"{stem}{self._fresh}"

    def run(self, fn: Operation) -> None:
        self.walk_block(fn.regions[0].entry_block)

    # ---- symbolic evaluation ---------------------------------------------

    def eval(self, value: Value) -> PwAff:
        """The piecewise-affine form of an index value; unresolvable
        expressions become fresh unconstrained parameters (sound: any
        integer), mirroring the interval engine's ``top()``."""
        cached = self.env.get(id(value))
        if cached is not None:
            return cached
        try:
            result = self._prune(self._eval_uncached(value))
        except AffineUnknown:
            result = PwAff.var(self.fresh("p"))
        self.env[id(value)] = result
        return result

    def _prune(self, pw: PwAff) -> PwAff:
        """Drop pieces infeasible under the current domain. Values are
        evaluated eagerly at their defining op (see :meth:`before_op`),
        so the current domain is the definition scope — an ancestor of
        every use scope, which makes the pruned form valid everywhere
        the value is in scope. This is what keeps correlated
        ``min``/``max`` chains (the tiling pass's window arithmetic)
        from exploding combinatorially."""
        if len(pw.pieces) == 1:
            return pw
        kept = []
        for g, e in pw.pieces:
            try:
                if self.domain.conjoin(g).is_empty():
                    continue
            except AffineUnknown:
                pass
            kept.append((g, e))
        return PwAff(kept, pw.exact) if kept else pw

    def _eval_uncached(self, value: Value) -> PwAff:
        if not isinstance(value, OpResult):
            # Unbound block argument (e.g. a mesh-size function
            # parameter): one symbolic parameter per value, so every
            # use of the same dynamic extent unifies.
            raise AffineUnknown("unbound block argument")
        op = value.op
        name = op.name
        if name == "arith.constant":
            attr = op.attributes.get("value")
            if isinstance(attr, IntegerAttr):
                return PwAff.const(attr.value)
            raise AffineUnknown("non-integer constant")
        if name == "arith.index_cast":
            return self.eval(op.operand(0))
        if op.num_operands == 2:
            if name == "arith.addi":
                return self.eval(op.operand(0)) + self.eval(op.operand(1))
            if name == "arith.subi":
                return self.eval(op.operand(0)) - self.eval(op.operand(1))
            if name == "arith.muli":
                return self.eval(op.operand(0)).mul(self.eval(op.operand(1)))
            if name == "arith.minsi":
                return self.eval(op.operand(0)).min_(self.eval(op.operand(1)))
            if name == "arith.maxsi":
                return self.eval(op.operand(0)).max_(self.eval(op.operand(1)))
            if name in ("arith.floordivi", "arith.remi"):
                m = self.eval(op.operand(1)).as_const()
                if m is None:
                    raise AffineUnknown(f"{name} by a non-constant")
                a = self.eval(op.operand(0))
                if name == "arith.floordivi":
                    return a.floordiv(m, self.fresh)
                return a.rem(m, self.fresh)
        if name == "arith.select" and op.num_operands == 3:
            return self.eval(op.operand(1)).join(self.eval(op.operand(2)))
        if name in ("tensor.dim", "memref.dim"):
            dim = op.attributes.get("dim")
            if isinstance(dim, IntegerAttr):
                ext = self.extent(op.operand(0))
                if 0 <= dim.value < len(ext):
                    return ext[dim.value]
        raise AffineUnknown(f"unsupported index producer {name}")

    # ---- symbolic extents ------------------------------------------------

    def extent(self, value: Value) -> Tuple[PwAff, ...]:
        bound = self.extent_env.get(id(value))
        if bound is not None:
            return bound
        t = value.type
        if not isinstance(t, (TensorType, MemRefType)):
            raise AffineUnknown("extent of a non-shaped value")
        if all(d != -1 for d in t.shape):
            return tuple(PwAff.const(d) for d in t.shape)
        result = self._dynamic_extent(value, t.shape)
        self.extent_env[id(value)] = result
        return result

    def _dynamic_extent(self, value, shape) -> Tuple[PwAff, ...]:
        from repro.analysis.absint.engine import _EXTENT_FORWARD

        if isinstance(value, OpResult):
            op = value.op
            name = op.name
            forward = _EXTENT_FORWARD.get(name)
            if forward is not None:
                return self.extent(op.operand(forward))
            if name in ("tensor.empty", "memref.alloc"):
                dyn = iter(op.operands)
                return tuple(
                    PwAff.const(d) if d != -1 else self.eval(next(dyn))
                    for d in shape
                )
            if name in ("tensor.extract_slice", "memref.subview"):
                rank = (op.num_operands - 1) // 2
                sizes = op.operands[1 + rank :]
                return tuple(
                    PwAff.const(d) if d != -1 else self.eval(sizes[i])
                    for i, d in enumerate(shape)
                )
            if name == "scf.for":
                return self.extent(op.operand(3 + value.index))
            if name == "cfd.tiled_loop":
                return self.extent(op.outs[value.index])
            if name == "linalg.generic":
                return self.extent(op.operand(op.attributes["num_ins"].value))
        return tuple(
            PwAff.const(d) if d != -1
            else PwAff.var(self.fresh("p"))
            for d in shape
        )

    # ---- loop binding ----------------------------------------------------

    def _bound_exprs(
        self, value: Value, want: str
    ) -> Optional[List[Tuple[AffineSet, LinExpr]]]:
        """Decompose a loop bound into affine conjuncts: a ``min`` tree
        for upper bounds (``want == "min"``) or a ``max`` tree for lower
        bounds, distributing ``+``/``-`` over the tree. Each conjunct
        carries its guard (e.g. the definitional quotient constraints of
        a ``floordiv`` leaf — always satisfiable, so conjoining them is
        exact). Returns ``None`` when the value is not such a tree."""
        if isinstance(value, OpResult):
            op = value.op
            name = op.name
            if name == "arith.index_cast":
                return self._bound_exprs(op.operand(0), want)
            if (name == "arith.minsi" and want == "min") or (
                name == "arith.maxsi" and want == "max"
            ):
                a = self._bound_exprs(op.operand(0), want)
                b = self._bound_exprs(op.operand(1), want)
                if a is None or b is None:
                    return None
                return a + b
            if name in ("arith.addi", "arith.subi") and op.num_operands == 2:
                rhs = self.eval(op.operand(1))
                if len(rhs.pieces) == 1:
                    base = self._bound_exprs(op.operand(0), want)
                    if base is not None:
                        g_off, off = rhs.pieces[0]
                        if name == "arith.subi":
                            off = -off
                        return [
                            (g.conjoin(g_off), e + off) for g, e in base
                        ]
        pw = self.eval(value)
        if len(pw.pieces) == 1:
            return [pw.pieces[0]]
        return None

    #: Cap on simultaneous domain forks per loop nest; past this the
    #: binding degrades to the constant hull (inexact, like the
    #: interval engine's approximate visit).
    MAX_FORKS = 16

    def _lb_cases(
        self, lb_v: Value, step: Optional[int]
    ) -> Optional[List[Tuple[AffineSet, List[LinExpr], Optional[LinExpr]]]]:
        """Case analysis of a loop lower bound: ``(guard, conjuncts,
        stride_base)`` triples whose guards cover the context. For a
        unit step a ``max`` tree needs no case split (each leaf is one
        ``iv >= e`` conjunct); a non-unit step needs the attained value
        of the bound as the stride base, so each piece of an exact case
        analysis becomes its own fork."""
        lbs = self._bound_exprs(lb_v, "max")
        if lbs is not None and (step == 1 or len(lbs) == 1):
            dom = AffineSet.universe()
            for g, _ in lbs:
                dom = dom.conjoin(g)
            return [(dom, [e for _, e in lbs], lbs[0][1])]
        pw = self.eval(lb_v)
        if not pw.exact:
            return None
        if lbs is not None and len(lbs) > 1:
            # max-tree with a non-unit step: fork on which leaf attains
            # the max (guards overlap on ties; that only re-proves).
            cases = []
            for i, (gi, ei) in enumerate(lbs):
                g = gi
                for j, (gj, ej) in enumerate(lbs):
                    if i != j:
                        g = g.conjoin(gj).and_ge0(ei - ej)
                cases.append((g, [ei], ei))
            return cases
        return [(g, [e], e) for g, e in pw.pieces]

    def _ub_cases(
        self, ub_v: Value
    ) -> Optional[List[Tuple[AffineSet, List[LinExpr]]]]:
        ubs = self._bound_exprs(ub_v, "min")
        if ubs is not None:
            dom = AffineSet.universe()
            for g, _ in ubs:
                dom = dom.conjoin(g)
            return [(dom, [e for _, e in ubs])]
        pw = self.eval(ub_v)
        if not pw.exact:
            return None
        return [(g, [e]) for g, e in pw.pieces]

    def _bind_range(
        self,
        forks: List[Tuple[AffineSet, bool]],
        iv: Value,
        lb_v: Value,
        ub_v: Value,
        step: Optional[int],
    ) -> List[Tuple[AffineSet, bool]]:
        """Bind ``iv`` to a fresh variable constrained by
        ``lb <= iv < ub`` (with a stride constraint for ``step > 1``)
        in every fork, case-splitting on exact piecewise bounds.
        Returns the extended fork list."""
        name = self.fresh("i")
        var = LinExpr.var(name)
        self.env[id(iv)] = PwAff.expr(var)
        saved = self.domain
        out: List[Tuple[AffineSet, bool]] = []
        try:
            for dom, exact in forks:
                self.domain = dom  # bound evaluation prunes against it
                lb_cases = self._lb_cases(lb_v, step)
                ub_cases = self._ub_cases(ub_v)
                if (
                    lb_cases is None
                    or ub_cases is None
                    or len(out) + len(lb_cases) * len(ub_cases)
                    > self.MAX_FORKS
                ):
                    out.append(self._bind_hull(dom, var, lb_v, ub_v))
                    continue
                for g_lb, lbs, base in lb_cases:
                    for g_ub, ubs in ub_cases:
                        d = dom.conjoin(g_lb).conjoin(g_ub)
                        for e in lbs:
                            d = d.and_ge0(var - e)
                        for e in ubs:
                            d = d.and_ge0(-var + e - 1)
                        e2 = exact
                        if step is None:
                            e2 = False
                        elif step != 1:
                            d = d.and_stride(
                                var - base, step, self.fresh("q")
                            )
                        out.append((d, e2))
        finally:
            self.domain = saved
        return out

    def _bind_hull(
        self, dom: AffineSet, var: LinExpr, lb_v: Value, ub_v: Value
    ) -> Tuple[AffineSet, bool]:
        saved = self.domain
        self.domain = dom
        try:
            try:
                lo, _ = hull(self.eval(lb_v), dom)
                dom = dom.and_ge0(var - lo)
            except AffineUnknown:
                pass
            try:
                _, hi = hull(self.eval(ub_v), dom)
                dom = dom.and_ge0(-var + hi - 1)
            except AffineUnknown:
                pass
        finally:
            self.domain = saved
        return dom, False

    def _walk_forks(
        self, op: Operation, forks: List[Tuple[AffineSet, bool]]
    ) -> None:
        """Walk the loop body once per fork. Each fork gets a snapshot
        of the value environments: memoized values are pruned against
        the domain they were first evaluated under, so a value pruned
        inside one fork must not leak into a sibling."""
        saved_dom = self.domain
        for dom, exact in forks:
            if exact and self._provably_empty(dom):
                continue  # zero-trip loop: the body never executes
            env_snap = dict(self.env)
            ext_snap = dict(self.extent_env)
            self.domain = dom
            self.inexact_depth += 0 if exact else 1
            try:
                self.walk_block(op.regions[0].entry_block)
            finally:
                self.domain = saved_dom
                self.inexact_depth -= 0 if exact else 1
                self.env = env_snap
                self.extent_env = ext_snap

    # ---- control flow ----------------------------------------------------

    def visit_scf_for(self, op: Operation) -> None:
        self.before_op(op)
        body = op.regions[0].entry_block
        for j, init in enumerate(op.operands[3:]):
            if isinstance(init.type, (TensorType, MemRefType)):
                try:
                    self.extent_env[id(body.arguments[1 + j])] = self.extent(
                        init
                    )
                except AffineUnknown:
                    pass
        step = self.eval(op.operand(2)).as_const()
        if step is not None and step <= 0:
            step = None
        forks = self._bind_range(
            [(self.domain, True)],
            body.arguments[0], op.operand(0), op.operand(1), step,
        )
        self._walk_forks(op, forks)

    def visit_scf_parallel(self, op: Operation) -> None:
        self.before_op(op)
        rank = op.num_operands // 3
        body = op.regions[0].entry_block
        forks = [(self.domain, True)]
        for d in range(rank):
            step = self.eval(op.operand(2 * rank + d)).as_const()
            if step is not None and step <= 0:
                step = None
            forks = self._bind_range(
                forks, body.arguments[d],
                op.operand(d), op.operand(rank + d), step,
            )
        self._walk_forks(op, forks)

    def visit_scf_if(self, op: Operation) -> None:
        # Parity with the interval engine: both branches are analyzed
        # in the enclosing context (the condition is not modelled).
        self.before_op(op)
        for region in op.regions:
            for block in region.blocks:
                self.walk_block(block)

    def visit_cfd_tiled_loop(self, op: Operation) -> None:
        self.before_op(op)
        for arg, val in zip(op.in_args, op.ins):
            if isinstance(val.type, (TensorType, MemRefType)):
                try:
                    self.extent_env[id(arg)] = self.extent(val)
                except AffineUnknown:
                    pass
        for arg, val in zip(op.out_args, op.outs):
            if isinstance(val.type, (TensorType, MemRefType)):
                try:
                    self.extent_env[id(arg)] = self.extent(val)
                except AffineUnknown:
                    pass
        forks = [(self.domain, True)]
        for iv, lb_v, ub_v, st_v in zip(
            op.induction_vars, op.lbs, op.ubs, op.steps
        ):
            step = self.eval(st_v).as_const()
            if step is not None and step <= 0:
                step = None
            forks = self._bind_range(forks, iv, lb_v, ub_v, step)
        self._walk_forks(op, forks)

    # ---- access dispatch (mirror of absint.bounds) -----------------------

    #: producers evaluated eagerly at their definition so pruning (and
    #: memoization) happen under the definition-scope domain.
    _EAGER = frozenset((
        "arith.constant", "arith.addi", "arith.subi", "arith.muli",
        "arith.minsi", "arith.maxsi", "arith.floordivi", "arith.remi",
        "arith.select", "arith.index_cast", "tensor.dim", "memref.dim",
    ))

    def before_op(self, op: Operation) -> None:
        name = op.name
        if name in self._EAGER and op.num_results == 1:
            try:
                self.eval(op.result())
            except AffineUnknown:
                pass
        try:
            if name in ("tensor.extract", "memref.load"):
                self._check_point(op, op.operand(0), op.operands[1:], "read")
            elif name == "tensor.insert":
                self._check_point(op, op.operand(1), op.operands[2:], "write")
            elif name == "memref.store":
                self._check_point(op, op.operand(1), op.operands[2:], "write")
            elif name in ("tensor.extract_slice", "memref.subview"):
                rank = (op.num_operands - 1) // 2
                self._check_window(
                    op, op.operand(0),
                    op.operands[1 : 1 + rank], op.operands[1 + rank :],
                )
            elif name == "tensor.insert_slice":
                rank = (op.num_operands - 2) // 2
                self._check_window(
                    op, op.operand(1),
                    op.operands[2 : 2 + rank], op.operands[2 + rank :],
                )
            elif name == "vector.transfer_read":
                self._check_transfer(
                    op, op.operand(0), op.operands[1:],
                    op.result().type.shape[0], "read",
                )
            elif name == "vector.transfer_write":
                self._check_transfer(
                    op, op.operand(1), op.operands[2:],
                    op.operand(0).type.shape[0], "write",
                )
            elif name == "cfd.stencilOp":
                self._check_stencil(op)
            elif name == "linalg.generic":
                self._check_generic(op)
        except AffineUnknown as exc:
            self._undecide(op, str(exc))

    def _undecide(self, op: Operation, reason: str) -> None:
        self.report.undecided.setdefault(id(op), reason)
        self.report.undecided_ops.setdefault(id(op), op)

    # ---- the footprint shapes --------------------------------------------

    def _check_point(self, op, buffer, index_values, what) -> None:
        idx = [self.eval(v) for v in index_values]
        self._verdict(op, buffer, self.domain, idx, idx, "IP011",
                      lambda box: f"{what} at index {box_str(box)}")

    def _check_window(self, op, buffer, offs, sizes) -> None:
        offs_pw = [self.eval(v) for v in offs]
        sizes_pw = [self.eval(v) for v in sizes]
        one = PwAff.const(1)
        uppers = [
            o.max_(o + s - one) for o, s in zip(offs_pw, sizes_pw)
        ]
        self._verdict(op, buffer, self.domain, offs_pw, uppers, "IP012",
                      lambda box: f"slice window {box_str(box)}")

    def _check_transfer(self, op, buffer, index_values, vf, what) -> None:
        idx = [self.eval(v) for v in index_values]
        uppers = list(idx)
        uppers[-1] = uppers[-1] + PwAff.const(vf - 1)
        self._verdict(
            op, buffer, self.domain, idx, uppers, "IP011",
            lambda box: f"vector {what} of width {vf} at {box_str(box)}",
        )

    def _check_stencil(self, op) -> None:
        if not op.has_bounds:
            return  # interior bounds are in range by construction
        pattern = op.pattern
        k = pattern.rank
        halo_lo = [
            max([0] + [-o[d] for o, _ in pattern.accesses]) for d in range(k)
        ]
        halo_hi = [
            max([0] + [o[d] for o, _ in pattern.accesses]) for d in range(k)
        ]
        los = [self.eval(v) for v in op.bounds_lo]
        his = [self.eval(v) for v in op.bounds_hi]
        # Contexts with an empty core update nothing; constrain the
        # domain to non-empty cores (the enumerated checker skips those
        # visits). If no context has a non-empty core, there is nothing
        # to prove.
        dom = self.domain
        for lo, hi in zip(los, his):
            dom = self._require_lt(dom, lo, hi)
        if self._provably_empty(dom):
            return
        one = PwAff.const(1)
        nv_lo = [PwAff.const(0)]
        nv_hi = [PwAff.const(op.nb_var - 1)]
        w_lo = nv_lo + los
        w_hi = nv_hi + [h - one for h in his]
        r_lo = nv_lo + [
            lo - PwAff.const(hl) for lo, hl in zip(los, halo_lo)
        ]
        r_hi = nv_hi + [
            h - one + PwAff.const(hh) for h, hh in zip(his, halo_hi)
        ]

        def reads(box):
            return f"halo reads {box_str(box)}"

        self._verdict(op, op.x, dom, r_lo, r_hi, "IP011", reads)
        self._verdict(op, op.y_init, dom, r_lo, r_hi, "IP011", reads)
        self._verdict(op, op.b, dom, w_lo, w_hi, "IP011",
                      lambda box: f"rhs reads {box_str(box)}")

    def _check_generic(self, op) -> None:
        out_ext = self.extent(op.out_init)
        offsets = op.offsets
        margins = op.margins
        rank = len(out_ext)
        one = PwAff.const(1)
        los: List[int] = []
        his: List[PwAff] = []
        for d in range(rank):
            lo = max([0] + [-o[d] for o in offsets] + [margins[d][0]])
            hi_margin = max([0] + [o[d] for o in offsets] + [margins[d][1]])
            los.append(lo)
            his.append(out_ext[d] - PwAff.const(hi_margin))
        dom = self.domain
        for lo, hi in zip(los, his):
            dom = self._require_lt(dom, PwAff.const(lo), hi)
        if self._provably_empty(dom):
            return
        for j, (value, off) in enumerate(zip(op.ins, offsets)):
            lo_pw = [PwAff.const(lo + off[d]) for d, lo in enumerate(los)]
            hi_pw = [
                his[d] - one + PwAff.const(off[d]) for d in range(rank)
            ]
            self._verdict(
                op, value, dom, lo_pw, hi_pw, "IP011",
                lambda box, j=j: f"input #{j} reads {box_str(box)}",
            )

    @staticmethod
    def _provably_empty(dom: AffineSet) -> bool:
        try:
            return dom.is_empty()
        except AffineUnknown:
            return False

    @staticmethod
    def _require_lt(dom: AffineSet, lo: PwAff, hi: PwAff) -> AffineSet:
        """Constrain ``dom`` to contexts with ``lo < hi``. Exact only
        for single-piece values; multi-piece bounds keep the domain
        unchanged (a sound over-approximation of the non-empty cases)."""
        if len(lo.pieces) == 1 and len(hi.pieces) == 1:
            ga, ea = lo.pieces[0]
            gb, eb = hi.pieces[0]
            return dom.conjoin(ga).conjoin(gb).and_ge0(eb - ea - 1)
        return dom

    # ---- verdicts --------------------------------------------------------

    def _verdict(
        self, op, buffer, dom: AffineSet,
        lowers: List[PwAff], uppers: List[PwAff], code: str, render,
    ) -> None:
        if not isinstance(buffer.type, (TensorType, MemRefType)):
            return
        if id(op) in self.report.undecided:
            return
        self.report.checked += 1
        ext = self.extent(buffer)
        if len(ext) != len(lowers):
            return  # malformed IR; the verifier owns this complaint
        proven = True
        violated = False
        for lo, hi, e in zip(lowers, uppers, ext):
            v1 = prove_ge0(lo, dom)
            v2 = prove_lt(hi, e, dom)
            if VIOLATES in (v1, v2):
                violated = True
            if (v1, v2) != (PROVEN, PROVEN):
                proven = False
        if violated and not self.inexact_depth:
            box = self._hull_box(dom, lowers, uppers)
            ext_box = self._hull_box(dom, ext, ext)
            ext_str = box_str(ext_box) if ext_box else "<symbolic>"
            what = render(box) if box else render(
                tuple(Interval.top() for _ in lowers)
            )
            diag = Diagnostic(
                code=code,
                message=f"{what} escapes the allocation of extent {ext_str}",
                severity="error",
                op_path=op_path(op),
                excerpt=op_excerpt(op),
            )
            self.report.violations.setdefault((id(op), code), diag)
            return
        if not proven:
            self._undecide(op, "footprint not provably in bounds symbolically")
            return
        box = self._hull_box(dom, lowers, uppers)
        if box is None:
            self._undecide(
                op, "proven in bounds but the attained hull is unbounded"
            )
            return
        key = id(op)
        prior = self.report.proven.get(key)
        self.report.proven[key] = (
            box if prior is None else box_join(prior, box)
        )

    @staticmethod
    def _hull_box(
        dom: AffineSet, lowers: List[PwAff], uppers: List[PwAff]
    ) -> Optional[Box]:
        try:
            dims = []
            for lo, hi in zip(lowers, uppers):
                a, _ = hull(lo, dom)
                _, b = hull(hi, dom)
                dims.append(Interval(a, max(a, b)))
            return tuple(dims)
        except AffineUnknown:
            return None


def prove_module(module: Operation) -> ProofReport:
    """Run the affine prover over every function of ``module``."""
    report = ProofReport()
    for op in module.regions[0].entry_block.operations:
        if op.name != "func.func":
            continue
        AffineProver(report).run(op)
    return report
