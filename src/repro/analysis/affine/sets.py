"""Exact integer affine sets: linear expressions, conjunctions of
inequalities, and decision procedures.

The verification stack asks three kinds of questions about statement
instances — *is this access set empty*, *is it contained in the
allocation*, *do these two footprints overlap* — and PRs 2–4 answered
all of them by enumerating concrete instances. This module answers them
symbolically over the integers:

* :class:`LinExpr` — an integer-affine expression ``const + Σ coeff·var``
  over named variables (loop induction variables, lane indices, mesh
  parameters).
* :class:`AffineSet` — a conjunction of linear inequalities ``e >= 0``,
  equalities ``e == 0`` and divisibility (stride) constraints
  ``m | e`` (modeled as ``e == m·q`` with an existential quotient).
* :meth:`AffineSet.is_empty` — **exact** integer emptiness. The test
  runs Fourier–Motzkin elimination with integer tightening (every
  constraint divided by the gcd of its variable coefficients, the
  constant floored); an elimination step is integer-exact whenever one
  of the two combined bounds has a unit coefficient on the eliminated
  variable — which normalization makes the overwhelmingly common case
  here. When every step was exact, the rational verdict *is* the
  integer verdict. Otherwise (the dark-shadow gap) the answer is
  settled by a bounded back-substitution search for an integer point,
  so a verdict of "empty" is never returned for a set with integer
  points and vice versa. If the search cannot terminate (unbounded
  directions in an inexact projection) :class:`AffineUnknown` is
  raised — callers fall back to enumeration, never to a wrong answer.

All arithmetic is exact (Python integers); no floating point anywhere.
"""

from __future__ import annotations

import itertools
from math import gcd
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class AffineUnknown(Exception):
    """The decision procedure could not settle the query exactly.

    Raised instead of guessing; every caller has an enumeration
    fallback. In practice this only happens for unbounded variables
    under non-unit coefficients, which the pipelines never produce.
    """


def _floordiv(a: int, b: int) -> int:
    return a // b


class LinExpr:
    """``const + Σ coeffs[v]·v`` with integer coefficients."""

    __slots__ = ("const", "coeffs")

    def __init__(self, const: int = 0,
                 coeffs: Optional[Dict[str, int]] = None) -> None:
        self.const = const
        self.coeffs: Dict[str, int] = (
            {v: c for v, c in coeffs.items() if c} if coeffs else {}
        )

    # ---- constructors ----------------------------------------------------

    @staticmethod
    def var(name: str, coeff: int = 1) -> "LinExpr":
        return LinExpr(0, {name: coeff})

    @staticmethod
    def of(const: int) -> "LinExpr":
        return LinExpr(const)

    # ---- algebra ---------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def __add__(self, other) -> "LinExpr":
        if isinstance(other, int):
            return LinExpr(self.const + other, self.coeffs)
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, 0) + c
        return LinExpr(self.const + other.const, coeffs)

    def __sub__(self, other) -> "LinExpr":
        if isinstance(other, int):
            return LinExpr(self.const - other, self.coeffs)
        return self + other.scaled(-1)

    def __neg__(self) -> "LinExpr":
        return self.scaled(-1)

    def scaled(self, k: int) -> "LinExpr":
        if k == 0:
            return LinExpr(0)
        return LinExpr(self.const * k,
                       {v: c * k for v, c in self.coeffs.items()})

    def substituted(self, var: str, repl: "LinExpr") -> "LinExpr":
        c = self.coeffs.get(var)
        if not c:
            return self
        coeffs = {v: k for v, k in self.coeffs.items() if v != var}
        out = LinExpr(self.const, coeffs)
        return out + repl.scaled(c)

    def eval(self, env: Dict[str, int]) -> int:
        return self.const + sum(c * env[v] for v, c in self.coeffs.items())

    def __repr__(self) -> str:
        parts = [f"{c:+d}·{v}" for v, c in sorted(self.coeffs.items())]
        parts.append(f"{self.const:+d}")
        return " ".join(parts)

    def __eq__(self, other) -> bool:
        return (isinstance(other, LinExpr) and self.const == other.const
                and self.coeffs == other.coeffs)

    def __hash__(self) -> int:
        return hash((self.const, tuple(sorted(self.coeffs.items()))))


def _tighten(e: LinExpr) -> Optional[LinExpr]:
    """Integer-tighten ``e >= 0``: divide by the coefficient gcd and
    floor the constant. Returns ``None`` for a trivially true constraint
    and raises :class:`_Contradiction` on a trivially false one."""
    if not e.coeffs:
        if e.const < 0:
            raise _Contradiction()
        return None
    g = 0
    for c in e.coeffs.values():
        g = gcd(g, abs(c))
    if g > 1:
        e = LinExpr(_floordiv(e.const, g),
                    {v: c // g for v, c in e.coeffs.items()})
    return e


class _Contradiction(Exception):
    """Internal: the system is syntactically infeasible."""


#: Default work cap for the integer back-substitution search.
SEARCH_BUDGET = 20000


class AffineSet:
    """A conjunction of ``e >= 0`` inequalities and ``e == 0``
    equalities over named integer variables. Immutable: every ``and_*``
    returns a new set."""

    __slots__ = ("ineqs", "eqs", "_fresh")

    def __init__(self, ineqs: Iterable[LinExpr] = (),
                 eqs: Iterable[LinExpr] = ()) -> None:
        self.ineqs: Tuple[LinExpr, ...] = tuple(ineqs)
        self.eqs: Tuple[LinExpr, ...] = tuple(eqs)

    # ---- construction ----------------------------------------------------

    @staticmethod
    def universe() -> "AffineSet":
        return AffineSet()

    @staticmethod
    def box(names: Sequence[str],
            bounds: Sequence[Tuple[int, int]]) -> "AffineSet":
        """``lo <= v <= hi`` (inclusive) per variable."""
        ineqs: List[LinExpr] = []
        for name, (lo, hi) in zip(names, bounds):
            ineqs.append(LinExpr.var(name) - lo)
            ineqs.append(LinExpr.of(hi) - LinExpr.var(name))
        return AffineSet(ineqs)

    def and_ge0(self, e: LinExpr) -> "AffineSet":
        return AffineSet(self.ineqs + (e,), self.eqs)

    def and_le(self, a: LinExpr, b: LinExpr) -> "AffineSet":
        """``a <= b``."""
        return self.and_ge0(b - a)

    def and_eq0(self, e: LinExpr) -> "AffineSet":
        return AffineSet(self.ineqs, self.eqs + (e,))

    def and_stride(self, e: LinExpr, m: int, qname: str) -> "AffineSet":
        """``m | e``: adds the equality ``e == m·q`` with the existential
        quotient variable ``qname`` (callers supply a fresh name)."""
        assert m > 0
        return self.and_eq0(e - LinExpr.var(qname, m))

    def conjoin(self, other: "AffineSet") -> "AffineSet":
        return AffineSet(self.ineqs + other.ineqs, self.eqs + other.eqs)

    def variables(self) -> List[str]:
        seen: Dict[str, None] = {}
        for e in self.eqs + self.ineqs:
            for v in e.coeffs:
                seen.setdefault(v)
        return list(seen)

    # ---- normalization ---------------------------------------------------

    def _normalized(self) -> Tuple[List[LinExpr], List[Tuple[str, LinExpr]]]:
        """Substitute out unit-coefficient equalities, gcd-check the
        rest, tighten all inequalities. Returns ``(ineqs, subs)`` where
        ``subs`` replays the substitutions (var, replacement) in order.
        Raises :class:`_Contradiction` when infeasibility is syntactic.
        Remaining non-unit equalities are kept as inequality pairs (the
        sample search re-verifies against the originals)."""
        eqs = list(self.eqs)
        ineqs = list(self.ineqs)
        subs: List[Tuple[str, LinExpr]] = []
        progress = True
        while progress:
            progress = False
            next_eqs: List[LinExpr] = []
            for e in eqs:
                if not e.coeffs:
                    if e.const != 0:
                        raise _Contradiction()
                    continue
                g = 0
                for c in e.coeffs.values():
                    g = gcd(g, abs(c))
                if g > 1:
                    if e.const % g != 0:
                        raise _Contradiction()
                    e = LinExpr(e.const // g,
                                {v: c // g for v, c in e.coeffs.items()})
                unit = next((v for v, c in e.coeffs.items()
                             if c in (1, -1)), None)
                if unit is None:
                    next_eqs.append(e)
                    continue
                # e == 0 with coeff ±1 on `unit`: unit = ∓(e - c·unit).
                c = e.coeffs[unit]
                rest = LinExpr(e.const,
                               {v: k for v, k in e.coeffs.items()
                                if v != unit})
                repl = rest.scaled(-c)  # c in {1,-1}: -c·rest
                subs.append((unit, repl))
                eqs = [x.substituted(unit, repl) for x in eqs if x is not e]
                ineqs = [x.substituted(unit, repl) for x in ineqs]
                next_eqs = None
                progress = True
                break
            if next_eqs is not None:
                eqs = next_eqs
        # Non-unit equalities survive as two-sided inequalities; the
        # tightening of each side performs the divisibility cut.
        for e in eqs:
            ineqs.append(e)
            ineqs.append(-e)
        out: Dict[Tuple[Tuple[str, int], ...], LinExpr] = {}
        for e in ineqs:
            t = _tighten(e)
            if t is None:
                continue
            key = tuple(sorted(t.coeffs.items()))
            prev = out.get(key)
            if prev is None or t.const < prev.const:
                out[key] = t
        return list(out.values()), subs

    # ---- Fourier–Motzkin -------------------------------------------------

    @staticmethod
    def _eliminate(ineqs: List[LinExpr],
                   var: str) -> Tuple[List[LinExpr], bool]:
        """Project ``var`` out. Returns ``(constraints, exact)`` where
        ``exact`` certifies the integer shadow equals the rational one
        (every combined pair had a unit coefficient on ``var``)."""
        lowers: List[LinExpr] = []   # a·var + r >= 0, a > 0
        uppers: List[LinExpr] = []   # -b·var + s >= 0, b > 0
        rest: List[LinExpr] = []
        for e in ineqs:
            c = e.coeffs.get(var, 0)
            if c > 0:
                lowers.append(e)
            elif c < 0:
                uppers.append(e)
            else:
                rest.append(e)
        exact = True
        for lo in lowers:
            a = lo.coeffs[var]
            for up in uppers:
                b = -up.coeffs[var]
                raw = up.scaled(a) + lo.scaled(b)
                if a > 1 and b > 1:
                    # Integer-exact anyway when the dark shadow
                    # ``raw >= (a-1)(b-1)`` holds over the whole
                    # projection — decidable on the spot only for a
                    # constant-only combination.
                    if not (not raw.coeffs
                            and raw.const >= (a - 1) * (b - 1)):
                        exact = False
                combined = _tighten(raw)
                if combined is not None:
                    rest.append(combined)
        return rest, exact

    @staticmethod
    def _order(ineqs: List[LinExpr]) -> List[str]:
        """Greedy elimination order: fewest lower×upper products first."""
        counts: Dict[str, Tuple[int, int]] = {}
        for e in ineqs:
            for v, c in e.coeffs.items():
                lo, up = counts.get(v, (0, 0))
                counts[v] = (lo + (c > 0), up + (c < 0))
        return sorted(counts, key=lambda v: counts[v][0] * counts[v][1])

    def _project_all(
        self, ineqs: List[LinExpr]
    ) -> Tuple[bool, bool, List[Tuple[str, List[LinExpr]]]]:
        """Eliminate every variable. Returns ``(empty, exact, cascade)``
        where ``cascade`` records ``(var, system-before-elimination)``
        pairs for back-substitution sampling."""
        exact = True
        cascade: List[Tuple[str, List[LinExpr]]] = []
        current = ineqs
        while True:
            vars_left = self._order(current)
            if not vars_left:
                break
            var = vars_left[0]
            cascade.append((var, current))
            try:
                current, step_exact = self._eliminate(current, var)
            except _Contradiction:
                return True, exact, cascade
            exact = exact and step_exact
        for e in current:
            if not e.coeffs and e.const < 0:
                return True, exact, cascade
        return False, exact, cascade

    # ---- decision procedures ---------------------------------------------

    def is_empty(self, budget: int = SEARCH_BUDGET) -> bool:
        """Exact integer emptiness (see module docstring)."""
        try:
            ineqs, _ = self._normalized()
        except _Contradiction:
            return True
        empty, exact, cascade = self._project_all(ineqs)
        if empty:
            return True
        if exact:
            return False
        return self._search(cascade, budget) is None

    def sample_point(self, budget: int = SEARCH_BUDGET
                     ) -> Optional[Dict[str, int]]:
        """An integer point of the set (all constrained variables bound,
        unconstrained ones absent), or ``None`` when empty."""
        try:
            ineqs, subs = self._normalized()
        except _Contradiction:
            return None
        empty, _, cascade = self._project_all(ineqs)
        if empty:
            return None
        env = self._search(cascade, budget)
        if env is None:
            return None
        # Replay the equality substitutions newest-first to recover the
        # variables normalization eliminated.
        for var, repl in reversed(subs):
            env[var] = repl.eval({v: env.get(v, 0) for v in repl.coeffs})
        for e in self.eqs:
            if e.eval({v: env.setdefault(v, 0) for v in e.coeffs}) != 0:
                return None  # cannot happen: substitutions are exact
        return env

    def _search(self, cascade, budget: int) -> Optional[Dict[str, int]]:
        """Back-substitution DFS over the FM cascade: assign variables
        last-eliminated-first, trying every integer inside the rational
        interval each level admits."""
        trials = [0]

        def rec(level: int, env: Dict[str, int]) -> Optional[Dict[str, int]]:
            if level < 0:
                return dict(env)
            var, system = cascade[level]
            lo: Optional[int] = None
            hi: Optional[int] = None
            for e in system:
                c = e.coeffs.get(var, 0)
                rest = e.const + sum(
                    k * env[v] for v, k in e.coeffs.items() if v != var
                )
                if c == 0:
                    if not all(v in env or v == var for v in e.coeffs):
                        continue
                    if rest < 0:
                        return None
                elif c > 0:  # var >= ceil(-rest / c) == -(rest // c)
                    b = -(rest // c)
                    lo = b if lo is None else max(lo, b)
                else:  # c < 0: var <= floor(rest / -c)
                    b = _floordiv(rest, -c)
                    hi = b if hi is None else min(hi, b)
            if lo is None and hi is None:
                env[var] = 0
                out = rec(level - 1, env)
                if out is None:
                    del env[var]
                return out
            if lo is None:
                lo = hi - 64
            if hi is None:
                hi = lo + 64
            if hi - lo > budget:
                raise AffineUnknown(
                    f"search range for {var} too large ({lo}..{hi})"
                )
            for val in range(lo, hi + 1):
                trials[0] += 1
                if trials[0] > budget:
                    raise AffineUnknown("integer search budget exhausted")
                env[var] = val
                out = rec(level - 1, env)
                if out is not None:
                    return out
                del env[var]
            return None

        return rec(len(cascade) - 1, {})

    def contains(self, other: "AffineSet") -> bool:
        """``other ⊆ self``: no point of ``other`` violates any single
        constraint of ``self``."""
        for e in self.ineqs:
            # violated when e <= -1
            if not other.and_ge0(-e - 1).is_empty():
                return False
        for e in self.eqs:
            if not other.and_ge0(e - 1).is_empty():
                return False
            if not other.and_ge0(-e - 1).is_empty():
                return False
        return True

    def overlaps(self, other: "AffineSet") -> bool:
        return not self.conjoin(other).is_empty()

    def bounds(self, expr: LinExpr,
               tvar: str = "__bnd") -> Tuple[Optional[int], Optional[int]]:
        """Exact inclusive integer ``(min, max)`` of ``expr`` over the
        set; ``None`` on an unbounded side. Raises
        :class:`AffineUnknown` when the projection is not integer-exact
        (the extremes might then not be attained)."""
        sys = self.and_eq0(expr - LinExpr.var(tvar))
        try:
            ineqs, subs = sys._normalized()
        except _Contradiction:
            raise AffineUnknown("bounds() of an empty set")
        # The equality substitution may have eliminated tvar itself;
        # re-express the target through the recorded substitutions.
        target = LinExpr.var(tvar)
        for var, repl in subs:
            target = target.substituted(var, repl)
        if not target.is_const:
            # Project every other variable away, exactly.
            current = ineqs + [
                target - LinExpr.var(tvar), LinExpr.var(tvar) - target
            ]
            current, _ = AffineSet(current)._normalized()
            exact = True
            while True:
                free = [v for v in AffineSet._order(current) if v != tvar]
                if not free:
                    break
                try:
                    current, step_exact = self._eliminate(current, free[0])
                except _Contradiction:
                    raise AffineUnknown("bounds() of an empty set")
                exact = exact and step_exact
            lo: Optional[int] = None
            hi: Optional[int] = None
            for e in current:
                c = e.coeffs.get(tvar, 0)
                if c == 0:
                    if not e.coeffs and e.const < 0:
                        raise AffineUnknown("bounds() of an empty set")
                    continue
                if c > 0:  # tvar >= ceil(-const / c) == -(const // c)
                    b = -(e.const // c)
                    lo = b if lo is None else max(lo, b)
                else:
                    b = _floordiv(e.const, -c)
                    hi = b if hi is None else min(hi, b)
            if exact:
                return lo, hi
            # Inexact projection (e.g. a stride constraint): the
            # rational bounds may overshoot unattainable values. Walk
            # each bound inward until exact emptiness confirms a point
            # attains it.
            if hi is not None:
                hi = self._attained(expr, hi, -1)
            if lo is not None:
                lo = self._attained(expr, lo, +1)
            return lo, hi
        return target.const, target.const

    def _attained(self, expr: LinExpr, bound: int, step: int,
                  max_steps: int = 128) -> int:
        for k in range(max_steps):
            v = bound + step * k
            if not self.and_eq0(expr - v).is_empty():
                return v
        raise AffineUnknown(
            f"no attained value within {max_steps} of rational bound"
        )

    # ---- debugging -------------------------------------------------------

    def __repr__(self) -> str:
        parts = [f"{e!r} >= 0" for e in self.ineqs]
        parts += [f"{e!r} == 0" for e in self.eqs]
        return "{ " + " ∧ ".join(parts) + " }" if parts else "{ universe }"


# ---------------------------------------------------------------------------
# Brute-force reference (the hypothesis oracle and small-set fallback).
# ---------------------------------------------------------------------------


def enumerate_points(
    sets: Sequence[AffineSet],
    names: Sequence[str],
    bounds: Sequence[Tuple[int, int]],
) -> List[Dict[str, int]]:
    """All integer points of ``sets[0] ∧ ...`` inside the given box —
    the enumeration oracle the property tests compare the symbolic
    verdicts against.

    Variables appearing in constraints but not in ``names`` (existential
    stride quotients) are *existentially* quantified: a point counts
    when some assignment over a safe derived range satisfies every
    constraint."""
    exprs: List[Tuple[LinExpr, bool]] = []  # (expr, is_equality)
    for s in sets:
        exprs.extend((e, False) for e in s.ineqs)
        exprs.extend((e, True) for e in s.eqs)
    extras: List[str] = []
    for e, _ in exprs:
        for v in e.coeffs:
            if v not in names and v not in extras:
                extras.append(v)
    # A range certainly wide enough for any satisfying quotient: the
    # largest constraint magnitude attainable over the named box.
    mag = 1
    for e, _ in exprs:
        m = abs(e.const)
        for v, c in e.coeffs.items():
            if v in names:
                lo, hi = bounds[list(names).index(v)]
                m += abs(c) * max(abs(lo), abs(hi))
        mag = max(mag, m)

    def satisfied(env: Dict[str, int]) -> bool:
        def check(full: Dict[str, int]) -> bool:
            for e, is_eq in exprs:
                val = e.eval(full)
                if (val != 0) if is_eq else (val < 0):
                    return False
            return True

        if not extras:
            return check(env)
        for extra_vals in itertools.product(
            *(range(-mag, mag + 1) for _ in extras)
        ):
            full = dict(env)
            full.update(zip(extras, extra_vals))
            if check(full):
                return True
        return False

    out: List[Dict[str, int]] = []
    for values in itertools.product(
        *(range(lo, hi + 1) for lo, hi in bounds)
    ):
        env = dict(zip(names, values))
        if satisfied(env):
            out.append(env)
    return out
