"""Affine-set-backed footprint queries for tiled stencil sweeps.

The static performance prover (:mod:`repro.analysis.perf`) and the
autotuner need exact answers to "how many cells does this schedule
touch": the volume of one tile's halo-inclusive window clipped to the
allocation, the total window volume summed over every tile of a sweep
(the halo-recompute traffic), and the widest single-tile window (the
cache working set). This module answers all of them through
:class:`repro.analysis.affine.sets.AffineSet` — the same exact integer
decision procedure behind the verification gates — instead of
re-deriving the clipping arithmetic by hand.

Everything here is *separable*: a tiled sweep's windows are products of
per-dimension windows, so the sum over all tiles of the per-tile window
volume factors as ``Π_d (Σ_k w_{d,k})`` and the widest tile window as
``Π_d max_k w_{d,k}``. Per dimension, the clipped window extent takes at
most three distinct values (first tile, unclipped interior run, last
tile), so a sweep's footprint costs O(rank) affine ``bounds`` queries —
cheap enough to sit inside the autotuner's candidate loop.

This module deliberately imports nothing from :mod:`repro.core`; the
core tiling/autotune modules call into it lazily (mirroring how the
legality checker reaches the affine engine) so no import cycle forms
through ``repro.analysis.__init__``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.affine.sets import AffineSet, LinExpr


def box_cells(extents: Sequence[int]) -> int:
    """Cell count of an axis-aligned box, as an affine-set query.

    The box ``0 <= x_d <= extent_d - 1`` is built with
    :meth:`AffineSet.box` and each extent recovered with
    :meth:`AffineSet.bounds` — the single source of truth for "volume"
    shared with the in-bounds provers. Zero or negative extents make the
    box empty.
    """
    if any(int(e) <= 0 for e in extents):
        return 0
    names = [f"x{d}" for d in range(len(extents))]
    box = AffineSet.box(names, [(0, int(e) - 1) for e in extents])
    cells = 1
    for name in names:
        lo, hi = box.bounds(LinExpr.var(name))
        cells *= hi - lo + 1
    return cells


def window_extent(n: int, win_lo: int, win_hi: int) -> int:
    """Extent of the window ``[win_lo, win_hi]`` clipped to the
    allocation ``[0, n - 1]`` — the 1-D footprint of one tile's
    halo-inclusive read set, answered by an affine ``bounds`` query."""
    x = LinExpr.var("x")
    cell = (
        AffineSet.universe()
        .and_ge0(x - win_lo)
        .and_ge0(LinExpr.of(win_hi) - x)
        .and_ge0(x)
        .and_ge0(LinExpr.of(int(n) - 1) - x)
    )
    if cell.is_empty():
        return 0
    lo, hi = cell.bounds(x)
    return hi - lo + 1


@dataclass(frozen=True)
class DimWindows:
    """Per-dimension window statistics of one tiled sweep."""

    #: Number of tiles along this dimension.
    tiles: int
    #: Swept core extent (``hi - lo`` of the interior bounds).
    core: int
    #: Sum over tiles of the clipped halo-window extent.
    window_sum: int
    #: Widest single-tile clipped window extent.
    window_max: int


def dim_windows(
    n: int, lo: int, hi: int, tile: int, halo_lo: int, halo_hi: int
) -> DimWindows:
    """Window statistics for one dimension of a tiled sweep.

    The sweep covers cores ``[lo + k*tile, min(lo + (k+1)*tile, hi))``;
    each tile reads the window inflated by ``(halo_lo, halo_hi)``,
    clipped to the allocation ``[0, n)``. Only the first and last tiles
    can be clipped once the interior run is at full width, so the sum
    collapses to three :func:`window_extent` queries plus two guards;
    tiny grids fall back to the exact per-tile loop.
    """
    n, lo, hi = int(n), int(lo), int(hi)
    tile = max(1, int(tile))
    core = max(0, hi - lo)
    if core == 0:
        return DimWindows(0, 0, 0, 0)
    tiles = -(-core // tile)

    def w(k: int) -> int:
        s = lo + k * tile
        e = min(s + tile, hi)
        return window_extent(n, s - halo_lo, e - 1 + halo_hi)

    if tiles <= 4:
        ws = [w(k) for k in range(tiles)]
        return DimWindows(tiles, core, sum(ws), max(ws))
    full = tile + halo_lo + halo_hi
    w0, w1 = w(0), w(1)
    wl2, wl1 = w(tiles - 2), w(tiles - 1)
    if w1 == full and wl2 == full:
        # The interior run [1, tiles-2] is entirely unclipped: every
        # tile there has a full core and its window is bounded above by
        # ``full``; the clipped extent is concave in the tile index, so
        # matching endpoints at the maximum pin the whole run.
        total = w0 + wl1 + (tiles - 2) * full
        return DimWindows(tiles, core, total, max(w0, wl1, full))
    ws = [w(k) for k in range(tiles)]
    return DimWindows(tiles, core, sum(ws), max(ws))


@dataclass(frozen=True)
class SweepFootprint:
    """Exact cell-count footprint of one tiled sweep, separable per
    dimension. Products over :class:`DimWindows` give every quantity the
    perf prover prices: core cells (useful work), window cells (total
    traffic including halo re-reads), and the widest tile window (the
    cache working set)."""

    dims: Tuple[DimWindows, ...]

    @property
    def tile_grid(self) -> Tuple[int, ...]:
        return tuple(d.tiles for d in self.dims)

    @property
    def num_tiles(self) -> int:
        return _prod(d.tiles for d in self.dims)

    @property
    def core_cells(self) -> int:
        """Cells written by the sweep (the interior volume)."""
        return _prod(d.core for d in self.dims)

    @property
    def window_cells(self) -> int:
        """Σ over tiles of the halo-inclusive window volume — by
        separability, ``Π_d (Σ_k w_{d,k})``."""
        return _prod(d.window_sum for d in self.dims)

    @property
    def halo_cells(self) -> int:
        """Cells read more than once across tiles (window − core)."""
        return self.window_cells - self.core_cells

    @property
    def max_tile_window_cells(self) -> int:
        """The widest single tile's window volume — per-dim maxima are
        attained independently, so the product is exact."""
        return _prod(d.window_max for d in self.dims)


def sweep_footprint(
    space_shape: Sequence[int],
    interior: Sequence[Tuple[int, int]],
    tile_sizes: Sequence[int],
    halos: Sequence[Tuple[int, int]],
) -> SweepFootprint:
    """Footprint of tiling ``interior`` (per-dim ``[lo, hi)``) of an
    allocation of ``space_shape`` with ``tile_sizes``, each tile reading
    a window inflated by ``halos`` (per-dim ``(lo, hi)`` margins)."""
    if not (
        len(space_shape) == len(interior) == len(tile_sizes) == len(halos)
    ):
        raise ValueError("footprint query ranks disagree")
    dims: List[DimWindows] = []
    for n, (lo, hi), t, (h_lo, h_hi) in zip(
        space_shape, interior, tile_sizes, halos
    ):
        dims.append(dim_windows(n, lo, hi, t, h_lo, h_hi))
    return SweepFootprint(tuple(dims))


def _prod(values) -> int:
    out = 1
    for v in values:
        out *= int(v)
    return out
