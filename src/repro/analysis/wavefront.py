"""Wavefront race detection: replaying ``cfd.get_parallel_blocks``.

The CSR payload of ``cfd.get_parallel_blocks`` is produced at run time by
the longest-path schedule of Eq. (3). The analyzer *replays* that payload
statically (same grid, same computation as the interpreter and backend)
and audits it against the block dependence graph derived **independently**
from the consuming loop's L pattern and tile steps:

* every pair of same-group sub-domains connected by a dependence is a
  race (``IP004``);
* a dependence pointing at a later group breaks the group-order contract
  (``IP007``);
* the schedule must visit every sub-domain exactly once — a missing tile
  is a silent wrong answer (``IP005``), a duplicated one gives two
  same-group tiles overlapping write regions (``IP006``);
* the CSR encoding itself must be well-formed (``IP009``);
* the op's declared ``block_stencil`` must match the offsets derived from
  the pattern and tile sizes (``IP008``).

:func:`check_csr_schedule` is the array-level core, reused by the
mutation-corpus tests to audit deliberately corrupted payloads.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.consteval import eval_index
from repro.analysis.dependence import schedule_relevant_offsets
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.legality import (
    block_offset_range,
    loop_stencil_raw_attrs,
    static_tile_sizes,
)
from repro.ir.location import op_excerpt, op_path
from repro.ir.operation import Operation

Offset = Tuple[int, ...]


def derive_block_offsets(
    l_offsets: Sequence[Offset],
    sweep: int,
    allow_initial_reads: bool,
    tile_sizes: Sequence[int],
    engine: Optional[str] = None,
) -> List[Offset]:
    """Block-level predecessor offsets from the element-level L pattern.

    Independent of :meth:`StencilPattern.block_stencil_offsets`. The
    explicit offset list is inherently its own size (the CSR replay
    needs every edge), but under ``auto``/``symbolic`` the per-dimension
    extents are read off the affine reachable-block box — the same
    description the legality disjuncts are built from — instead of the
    corner ranges of :func:`block_offset_range`.
    """
    from repro.analysis.affine import ENGINE_STATS, resolve_verify_engine

    t0 = time.perf_counter()
    mode = resolve_verify_engine(engine)
    blocks = set()
    for offset in schedule_relevant_offsets(
        list(l_offsets), sweep, allow_initial_reads
    ):
        if mode != "enumerated":
            from repro.analysis.affine.blockdep import reachable_block_box
            from repro.analysis.affine.sets import LinExpr

            box = reachable_block_box(offset, tile_sizes)
            per_dim = []
            for d in range(len(tile_sizes)):
                lo, hi = box.bounds(LinExpr.var(f"b{d}"))
                per_dim.append(range(lo, hi + 1))
        else:
            per_dim = [
                block_offset_range(offset[d], int(tile_sizes[d]))
                for d in range(len(tile_sizes))
            ]
        stack: List[Offset] = [()]
        for r in per_dim:
            stack = [prefix + (c,) for prefix in stack for c in r]
        for block in stack:
            if any(c != 0 for c in block):
                blocks.add(block)
    ENGINE_STATS.record(
        "wavefront",
        "symbolic" if mode != "enumerated" else "enumerated",
        seconds=time.perf_counter() - t0,
    )
    return sorted(blocks)


def _delinearize(linear: int, shape: Sequence[int]) -> Offset:
    coords = []
    for extent in reversed(shape):
        coords.append(linear % extent)
        linear //= extent
    return tuple(reversed(coords))


def _linearize(coords: Offset, shape: Sequence[int]) -> int:
    out = 0
    for c, extent in zip(coords, shape):
        out = out * extent + c
    return out


def check_csr_schedule(
    num_blocks: Sequence[int],
    block_offsets: Sequence[Offset],
    offsets,
    indices,
    op: Optional[Operation] = None,
    max_reports_per_code: int = 8,
) -> List[Diagnostic]:
    """Audit one CSR wavefront payload against a block dependence graph.

    ``block_offsets`` point at predecessors: sub-domain ``s`` depends on
    ``s + r`` whenever that lands inside the grid.
    """
    path = op_path(op) if op is not None else ""
    excerpt = op_excerpt(op) if op is not None else ""

    def diag(code: str, message: str) -> Diagnostic:
        return Diagnostic(code=code, message=message, op_path=path, excerpt=excerpt)

    diags: List[Diagnostic] = []
    num_blocks = [int(n) for n in num_blocks]
    total = int(np.prod(num_blocks)) if num_blocks else 0
    offsets = np.asarray(offsets)
    indices = np.asarray(indices)

    # -- IP009: structural well-formedness of the CSR encoding.
    malformed = []
    if offsets.ndim != 1 or indices.ndim != 1:
        malformed.append("offsets/indices must be one-dimensional")
    else:
        if len(offsets) < 1 or offsets[0] != 0:
            malformed.append("offsets must start at 0")
        if len(offsets) >= 1 and offsets[-1] != len(indices):
            malformed.append(
                f"offsets must end at len(indices)={len(indices)}, "
                f"got {int(offsets[-1]) if len(offsets) else 'nothing'}"
            )
        if np.any(np.diff(offsets) < 0):
            malformed.append("offsets must be non-decreasing")
        if indices.size and (
            indices.min() < 0 or indices.max() >= total
        ):
            malformed.append(
                f"indices must lie in [0, {total}), found range "
                f"[{int(indices.min())}, {int(indices.max())}]"
            )
    if malformed:
        diags.append(diag("IP009", "; ".join(malformed)))
        return diags  # group membership is meaningless beyond this point

    # -- IP005 / IP006: exactly-once coverage.
    counts = np.bincount(indices, minlength=total) if total else np.array([])
    missing = np.flatnonzero(counts == 0)
    duplicated = np.flatnonzero(counts > 1)
    for linear in missing[:max_reports_per_code]:
        diags.append(
            diag(
                "IP005",
                f"sub-domain {_delinearize(int(linear), num_blocks)} "
                "is never scheduled: its cells are never updated",
            )
        )
    if len(missing) > max_reports_per_code:
        diags.append(
            diag("IP005", f"... and {len(missing) - max_reports_per_code} more")
        )
    for linear in duplicated[:max_reports_per_code]:
        diags.append(
            diag(
                "IP006",
                f"sub-domain {_delinearize(int(linear), num_blocks)} is "
                f"scheduled {int(counts[linear])} times: tiles with "
                "identical write regions overlap",
            )
        )

    # -- IP004 / IP007: dependence placement. The group of a duplicated
    # sub-domain is its earliest occurrence (the most forgiving reading).
    group_of = np.full(total, -1, dtype=np.int64)
    for g in range(len(offsets) - 1):
        for linear in indices[offsets[g] : offsets[g + 1]]:
            if group_of[linear] == -1:
                group_of[linear] = g
    races = 0
    order_violations = 0
    for linear in range(total):
        if group_of[linear] == -1:
            continue
        s = _delinearize(linear, num_blocks)
        for r in block_offsets:
            p = tuple(si + ri for si, ri in zip(s, r))
            if not all(0 <= pi < ni for pi, ni in zip(p, num_blocks)):
                continue
            p_linear = _linearize(p, num_blocks)
            if group_of[p_linear] == -1:
                continue
            if group_of[p_linear] == group_of[linear]:
                races += 1
                if races <= max_reports_per_code:
                    diags.append(
                        diag(
                            "IP004",
                            f"sub-domains {s} and {p} are in the same "
                            f"parallel group {int(group_of[linear])} but "
                            f"connected by block dependence {r}: "
                            "executing them concurrently races on the "
                            "halo cells",
                        )
                    )
            elif group_of[p_linear] > group_of[linear]:
                order_violations += 1
                if order_violations <= max_reports_per_code:
                    diags.append(
                        diag(
                            "IP007",
                            f"sub-domain {s} (group {int(group_of[linear])}) "
                            f"depends on {p} scheduled in later group "
                            f"{int(group_of[p_linear])}: the dependence "
                            "executes backwards",
                        )
                    )
    for count, code in ((races, "IP004"), (order_violations, "IP007")):
        if count > max_reports_per_code:
            diags.append(
                diag(code, f"... and {count - max_reports_per_code} more")
            )
    return diags


def _consumer_loop(op: Operation) -> Optional[Operation]:
    """The ``cfd.tiled_loop`` consuming this op's CSR results."""
    for res in op.results:
        for use in res.uses:
            if use.owner.name == "cfd.tiled_loop":
                return use.owner
    return None


def check_get_parallel_blocks(
    op: Operation, engine: Optional[str] = None
) -> List[Diagnostic]:
    """Audit one ``cfd.get_parallel_blocks`` op."""
    from repro.core.scheduling import compute_parallel_blocks

    diags: List[Diagnostic] = []
    declared = sorted(tuple(o) for o in op.block_offsets)

    # Independent derivation from the consuming loop's pattern and steps.
    loop = _consumer_loop(op)
    derived: Optional[List[Offset]] = None
    if loop is not None:
        raw = loop_stencil_raw_attrs(loop)
        tile_sizes = static_tile_sizes(loop)
        if raw is not None and tile_sizes is not None:
            rank, l_offsets, _, sweep, allow_initial = raw
            if len(tile_sizes) == rank:
                derived = derive_block_offsets(
                    l_offsets, sweep, allow_initial, tile_sizes, engine=engine
                )
    if derived is not None and declared != derived:
        diags.append(
            Diagnostic(
                code="IP008",
                message=(
                    f"declared block stencil {declared} disagrees with the "
                    f"offsets {derived} derived from the consuming loop's "
                    "L pattern and tile steps"
                ),
                op_path=op_path(op),
                excerpt=op_excerpt(op),
            )
        )

    num_blocks = [eval_index(o) for o in op.operands]
    if any(n is None or n < 1 for n in num_blocks):
        diags.append(
            Diagnostic(
                code="IP010",
                severity="note",
                message="sub-domain grid extents are not statically "
                "resolvable; wavefront replay skipped",
                op_path=op_path(op),
            )
        )
        return diags

    # Replay the runtime payload (the same computation the interpreter
    # and backend run) and audit it against the *derived* graph.
    try:
        csr_offsets, csr_indices = compute_parallel_blocks(num_blocks, declared)
    except ValueError as exc:
        diags.append(
            Diagnostic(
                code="IP009",
                message=f"declared block offsets admit no schedule: {exc}",
                op_path=op_path(op),
                excerpt=op_excerpt(op),
            )
        )
        return diags
    audit_graph = derived if derived is not None else declared
    diags.extend(
        check_csr_schedule(
            num_blocks, audit_graph, csr_offsets, csr_indices, op=op
        )
    )
    return diags
