"""A wall-clock watchdog for kernel and solver executions.

Long-running sweeps that hang (a livelocked wavefront schedule, an
injected ``executor.hang`` fault) must surface as a structured
:class:`TimeoutDiagnostic` instead of blocking the process forever.
:func:`call_with_watchdog` runs the callable in a daemon worker thread
and abandons it when the budget expires — Python cannot forcibly kill a
thread, so the hung worker is left to die with the process, which is the
standard degrade-don't-die trade-off for in-process watchdogs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.diagnostics import Diagnostic


@dataclass
class TimeoutDiagnostic:
    """What was cancelled, its budget and how long it actually ran."""

    what: str
    budget_seconds: float
    elapsed_seconds: float

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(
            "RS006",
            f"{self.what} exceeded its {self.budget_seconds:g}s wall-clock "
            f"budget (cancelled after {self.elapsed_seconds:.3f}s)",
        )


class ExecutionTimeout(RuntimeError):
    """Raised when the watchdog budget expires."""

    def __init__(self, info: TimeoutDiagnostic) -> None:
        self.info = info
        super().__init__(info.to_diagnostic().message)


def call_with_watchdog(
    fn: Callable[[], Any],
    timeout_seconds: float,
    what: str = "kernel execution",
) -> Any:
    """Run ``fn()`` under a wall-clock budget.

    Returns its result, re-raises its exception, or raises
    :class:`ExecutionTimeout` carrying a :class:`TimeoutDiagnostic` when
    the budget expires first.
    """
    if timeout_seconds <= 0:
        raise ValueError("timeout_seconds must be positive")
    box: dict = {}

    def target() -> None:
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised on the caller
            box["error"] = exc

    worker = threading.Thread(target=target, daemon=True)
    start = time.perf_counter()
    worker.start()
    worker.join(timeout_seconds)
    elapsed = time.perf_counter() - start
    if worker.is_alive():
        raise ExecutionTimeout(TimeoutDiagnostic(what, timeout_seconds, elapsed))
    if "error" in box:
        raise box["error"]
    return box["result"]
