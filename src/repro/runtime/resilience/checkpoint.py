"""Solver checkpoint/restart: periodic state snapshots + bit-identical resume.

The paper's in-place stencils drive *iterative* solvers (SOR sweeps, the
LU-SGS time loop, heat-3D implicit steps) whose long runs are exactly
the workloads that need restartability. :class:`CheckpointManager`
snapshots the full solver state every ``every`` steps (in memory, and
optionally as ``.npz`` files for cross-process restart);
:func:`run_checkpointed` is the generic loop driver the ``cfdlib``
solvers build on: it resumes from the latest checkpoint when one exists,
so a crash mid-solve costs at most ``every - 1`` recomputed steps and
the final state is bit-identical to an uninterrupted run (the step
functions are deterministic and the snapshots are deep copies).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.runtime.resilience.faults import maybe_inject

#: Solver state: named arrays (e.g. ``{"u": ...}`` or ``{"t": ..., "dt": ...}``).
State = Dict[str, np.ndarray]


@dataclass
class Checkpoint:
    """A deep-copied solver state captured after ``step`` completed steps."""

    step: int
    arrays: State

    def restore(self) -> State:
        """A fresh deep copy safe for in-place mutation by the solver."""
        return {k: np.array(v, copy=True) for k, v in self.arrays.items()}


class CheckpointManager:
    """Keeps the latest checkpoints in memory and optionally on disk.

    Parameters
    ----------
    every:
        Checkpoint cadence in completed steps (``0`` disables periodic
        saves; explicit :meth:`save` still works).
    directory:
        When set, each checkpoint is also written as
        ``ckpt_<step>.npz`` so a *new process* (or a fresh manager) can
        resume via :meth:`load_latest`.
    keep:
        How many on-disk checkpoints to retain (older ones are pruned).
    """

    def __init__(
        self,
        every: int = 10,
        directory: Optional[Path] = None,
        keep: int = 2,
    ) -> None:
        if every < 0:
            raise ValueError("every must be >= 0")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.every = every
        self.directory = Path(directory) if directory else None
        self.keep = keep
        self.latest: Optional[Checkpoint] = None
        #: Steps at which a checkpoint was captured (for tests/reports).
        self.saved_steps: List[int] = []

    def save(self, step: int, arrays: State) -> Checkpoint:
        cp = Checkpoint(step, {k: np.array(v, copy=True) for k, v in arrays.items()})
        self.latest = cp
        self.saved_steps.append(step)
        if self.directory is not None:
            self._store_to_disk(cp)
        return cp

    def maybe_save(self, step: int, arrays: State) -> Optional[Checkpoint]:
        """Save when the cadence says so (``step`` is 1-based completed count)."""
        if self.every and step and step % self.every == 0:
            return self.save(step, arrays)
        return None

    def load_latest(self) -> Optional[Checkpoint]:
        """The most recent checkpoint: memory first, then the disk tier."""
        if self.latest is not None:
            return self.latest
        if self.directory is None or not self.directory.is_dir():
            return None
        candidates = sorted(self.directory.glob("ckpt_*.npz"))
        for path in reversed(candidates):
            cp = self._load_from_disk(path)
            if cp is not None:
                self.latest = cp
                return cp
        return None

    def clear(self) -> None:
        self.latest = None
        self.saved_steps = []
        if self.directory is not None and self.directory.is_dir():
            for path in self.directory.glob("ckpt_*.npz"):
                path.unlink(missing_ok=True)

    # ---- disk tier ------------------------------------------------------

    def _store_to_disk(self, cp: Checkpoint) -> None:
        assert self.directory is not None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / f"ckpt_{cp.step:08d}.npz"
            # Unique temp name per writer (pid + thread): concurrent
            # managers checkpointing the same step into a shared
            # directory never interleave on one temp file, so a reader
            # only ever sees a complete .npz under the final name.
            tmp = path.with_name(
                f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            with open(tmp, "wb") as fh:
                np.savez(fh, **cp.arrays)
            tmp.replace(path)
            kept = sorted(self.directory.glob("ckpt_*.npz"))
            for stale in kept[: -self.keep]:
                stale.unlink(missing_ok=True)
        except OSError:
            pass  # an unwritable directory degrades to memory-only

    def _load_from_disk(self, path: Path) -> Optional[Checkpoint]:
        try:
            step = int(path.stem.split("_")[1])
            with np.load(path) as data:
                arrays = {k: np.array(data[k], copy=True) for k in data.files}
        except (OSError, ValueError, IndexError, KeyError):
            return None  # truncated/corrupt checkpoint: skip it
        return Checkpoint(step, arrays)


def run_checkpointed(
    step_fn: Callable[[State, int], State],
    state: State,
    steps: int,
    manager: Optional[CheckpointManager] = None,
    site: Optional[str] = None,
    report=None,
    resume: bool = True,
) -> State:
    """Drive ``state = step_fn(state, k)`` for ``k in range(steps)``.

    With a ``manager`` holding a checkpoint (a previous run crashed),
    execution resumes from it instead of step 0; periodic checkpoints are
    captured per the manager's cadence. ``site`` names the fault-injection
    point hit before every step; ``report`` (a
    :class:`~repro.runtime.resilience.report.RecoveryReport`) records
    RS007 checkpoint and RS008 resume events when provided.
    """
    start = 0
    if manager is not None and resume:
        cp = manager.load_latest()
        if cp is not None:
            state = cp.restore()
            start = cp.step
            if report is not None:
                report.add_event(
                    "RS008",
                    f"resuming solve from checkpoint at step {cp.step} "
                    f"(skipping {cp.step} completed step(s))",
                )
    for k in range(start, steps):
        if site is not None:
            maybe_inject(site, step=k)
        state = step_fn(state, k)
        if manager is not None:
            saved = manager.maybe_save(k + 1, state)
            if saved is not None and report is not None:
                report.add_event(
                    "RS007", f"checkpoint written after step {k + 1}"
                )
    return state
