"""Structured recovery reporting for the resilient driver.

Every retry, degradation, fallback, quarantine, checkpoint and timeout
decision made by the resilience layer lands in a :class:`RecoveryReport`
as an ``RS``-coded :class:`~repro.analysis.diagnostics.Diagnostic`, so a
run that survived faults explains *how* it survived — nothing recovers
silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.diagnostics import REGISTRY, Diagnostic


@dataclass
class AttemptRecord:
    """One compile (or execute) attempt of the resilient driver."""

    options: str
    outcome: str  # "ok" | "failed"
    stage: str = "compile"
    error: str = ""


@dataclass
class RecoveryReport:
    """The structured audit trail of one resilient compile/run.

    ``final`` names how the run ultimately produced a result:
    ``"compiled"`` (a compiled kernel, possibly after retries or
    degradation) or ``"interpreter"`` (the reference-interpreter
    fallback). ``final_options`` is the ``CompileOptions.describe()``
    string that finally succeeded.
    """

    events: List[Diagnostic] = field(default_factory=list)
    attempts: List[AttemptRecord] = field(default_factory=list)
    degradations: List[str] = field(default_factory=list)
    final: str = ""
    final_options: str = ""

    def add_event(
        self, code: str, message: str, severity: Optional[str] = None
    ) -> Diagnostic:
        """Record one RS-coded event (severity defaults to the registry's)."""
        diag = Diagnostic(
            code, message, severity=severity or REGISTRY[code].severity
        )
        self.events.append(diag)
        return diag

    def codes(self) -> List[str]:
        return [d.code for d in self.events]

    @property
    def recovered(self) -> bool:
        """Did a snapshot retry (RS001) save an attempt?"""
        return "RS001" in self.codes()

    @property
    def degraded(self) -> bool:
        """Did the driver walk down the policy chain (RS002/RS003)?"""
        return any(c in ("RS002", "RS003") for c in self.codes())

    def render(self) -> str:
        lines = [
            f"recovery report: final={self.final or '?'}"
            + (f" ({self.final_options})" if self.final_options else "")
        ]
        for rec in self.attempts:
            lines.append(
                f"  attempt[{rec.stage}] {rec.options}: {rec.outcome}"
                + (f" ({rec.error})" if rec.error else "")
            )
        for diag in self.events:
            lines.append("  " + diag.render().splitlines()[0])
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """A stable machine-consumable form; :meth:`from_json` inverts it.

        The compile service aggregates per-request reports across
        process boundaries, so this is a *contract*: every field is a
        plain JSON type and the round trip
        ``RecoveryReport.from_json(r.to_json()).to_json() == r.to_json()``
        holds exactly (pinned by a test).
        """
        return {
            "final": self.final,
            "final_options": self.final_options,
            "degradations": list(self.degradations),
            "attempts": [
                {
                    "options": a.options,
                    "outcome": a.outcome,
                    "stage": a.stage,
                    "error": a.error,
                }
                for a in self.attempts
            ],
            "events": [
                {
                    "code": d.code,
                    "severity": d.severity,
                    "message": d.message,
                    "op_path": d.op_path,
                    "excerpt": d.excerpt,
                    "after_pass": d.after_pass,
                }
                for d in self.events
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RecoveryReport":
        """Rebuild a report from :meth:`to_json` output.

        Tolerates the pre-PR-10 event shape (no ``op_path`` /
        ``excerpt`` / ``after_pass`` keys) so archived reports stay
        loadable.
        """
        report = cls(
            final=data.get("final", ""),
            final_options=data.get("final_options", ""),
            degradations=list(data.get("degradations", [])),
        )
        for a in data.get("attempts", []):
            report.attempts.append(AttemptRecord(
                options=a.get("options", ""),
                outcome=a.get("outcome", ""),
                stage=a.get("stage", "compile"),
                error=a.get("error", ""),
            ))
        for e in data.get("events", []):
            report.events.append(Diagnostic(
                e["code"],
                e.get("message", ""),
                severity=e.get("severity") or REGISTRY[e["code"]].severity,
                op_path=e.get("op_path", ""),
                excerpt=e.get("excerpt", ""),
                after_pass=e.get("after_pass"),
            ))
        return report
