"""Deterministic, seedable fault injection for chaos testing.

Production code is instrumented with :func:`maybe_inject` calls at
*registered fault sites* — named points in the pass manager, the kernel
cache's disk tier, the executor and the ``cfdlib`` solver loops. With no
:class:`FaultPlan` installed (the normal case) every call is a cheap
no-op; the chaos suite installs a plan that fires an
:class:`InjectedFault` (or a simulated hang) at a chosen invocation of a
chosen site, so recovery paths can be exercised deterministically.

Determinism contract: a plan is a pure function of its specs and seed.
:meth:`FaultPlan.seeded` derives the firing invocation from a SHA-256 of
``(site, seed)``, so CI can sweep a seed matrix and every run is exactly
reproducible.

This module depends only on the standard library so that low-level
modules (``repro.ir.pass_manager``, ``repro.codegen.cache``) can import
it without cycles.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Valid :attr:`FaultSpec.action` values.
ACTIONS = ("raise", "hang")


@dataclass(frozen=True)
class FaultSite:
    """One named injection point compiled into production code."""

    name: str
    category: str  # "pipeline" | "cache" | "executor" | "parallel" | "service" | "solver"
    description: str


#: Every registered injection point, keyed by site name. The chaos suite
#: sweeps this registry, so a new ``maybe_inject`` call must register its
#: site here (and thereby gets chaos coverage for free).
FAULT_SITES: Dict[str, FaultSite] = {}


def register_fault_site(name: str, category: str, description: str) -> FaultSite:
    """Register an injection point (idempotent re-registration is an error)."""
    if name in FAULT_SITES:
        raise ValueError(f"fault site {name!r} registered twice")
    site = FaultSite(name, category, description)
    FAULT_SITES[name] = site
    return site


# ---- the static site registry ---------------------------------------------

register_fault_site(
    "pipeline.pass-run", "pipeline",
    "a transformation pass raises before its body runs",
)
register_fault_site(
    "pipeline.verify", "pipeline",
    "the post-pass IR verifier raises (validation rejection path)",
)
register_fault_site(
    "cache.disk-read", "cache",
    "the kernel cache's disk tier fails while reading an entry",
)
register_fault_site(
    "cache.disk-write", "cache",
    "the kernel cache's disk tier fails while persisting an entry",
)
register_fault_site(
    "executor.compile", "executor",
    "emission or exec of the generated Python source raises",
)
register_fault_site(
    "executor.execute", "executor",
    "a compiled kernel raises mid-execution",
)
register_fault_site(
    "executor.hang", "executor",
    "a compiled kernel hangs (exercises the wall-clock watchdog)",
)
register_fault_site(
    "parallel.worker", "parallel",
    "a wavefront worker thread raises at block entry (exercises the "
    "sequential-degradation path of the parallel dispatcher)",
)
register_fault_site(
    "service.queue", "service",
    "the compile service's admission/queue stage fails while enqueuing "
    "an accepted request (the request must be rejected explicitly, "
    "never lost)",
)
register_fault_site(
    "service.leader", "service",
    "a single-flight leader crashes (or hangs) inside its compile job "
    "before the pipeline runs (exercises loser-wakeup re-dispatch)",
)
register_fault_site(
    "service.drain", "service",
    "the graceful-drain path fails while finalizing an in-flight "
    "request (drain must still complete without losing requests)",
)
register_fault_site(
    "solver.sweep", "solver",
    "an iterative Poisson solve crashes between sweeps",
)
register_fault_site(
    "solver.heat-step", "solver",
    "the heat-3D time loop crashes between implicit steps",
)
register_fault_site(
    "solver.lusgs-step", "solver",
    "the LU-SGS time loop crashes between implicit steps",
)


class InjectedFault(RuntimeError):
    """The exception raised by a firing fault site."""

    def __init__(self, site: str, invocation: int) -> None:
        self.site = site
        self.invocation = invocation
        super().__init__(
            f"injected fault at {site!r} (invocation {invocation})"
        )


def _stable_seed(site: str, seed: int) -> int:
    digest = hashlib.sha256(f"{site}:{seed}".encode("utf-8")).hexdigest()
    return int(digest[:12], 16)


@dataclass
class FaultSpec:
    """When and how one site misbehaves.

    The spec fires on the ``at``-th *eligible* invocation of ``site``
    (1-based; an invocation is eligible when ``match`` accepts its
    context) and keeps firing for ``times`` consecutive eligible
    invocations. ``match`` maps context keys to expected values; a string
    expectation also accepts a context value that starts with it (so
    ``{"pass_name": "vectorize-stencils"}`` matches the parameterized
    ``vectorize-stencils<vf=8>``).
    """

    site: str
    at: int = 1
    times: int = 1
    action: str = "raise"
    hang_seconds: float = 0.2
    match: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.at < 1 or self.times < 1:
            raise ValueError("at and times must be >= 1")

    def accepts(self, ctx: Dict[str, Any]) -> bool:
        if not self.match:
            return True
        for key, expected in self.match.items():
            got = ctx.get(key)
            if got == expected:
                continue
            if isinstance(expected, str) and isinstance(got, str) and \
                    got.startswith(expected):
                continue
            return False
        return True


@dataclass
class FaultPlan:
    """A deterministic schedule of fault firings.

    Thread-safe: invocation counters are guarded, so faults fire
    deterministically even when kernels run under the watchdog thread.
    """

    specs: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.specs = list(self.specs)
        #: (site, invocation) log of every firing, for test assertions.
        self.fired: List[Tuple[str, int]] = []
        self._counts: Dict[int, int] = {}
        self._invocations: Dict[str, int] = {}
        self._lock = threading.Lock()

    @classmethod
    def seeded(
        cls,
        site: str,
        seed: int = 0,
        max_at: int = 3,
        times: int = 1,
        action: str = "raise",
        hang_seconds: float = 0.2,
        match: Optional[Dict[str, Any]] = None,
    ) -> "FaultPlan":
        """One spec whose firing invocation is derived from ``seed``."""
        rng = random.Random(_stable_seed(site, seed))
        spec = FaultSpec(
            site,
            at=rng.randint(1, max(1, max_at)),
            times=times,
            action=action,
            hang_seconds=hang_seconds,
            match=match,
        )
        return cls([spec], seed=seed)

    def invocations(self, site: str) -> int:
        """How many times ``site`` was hit under this plan."""
        with self._lock:
            return self._invocations.get(site, 0)

    def observe(self, site: str, ctx: Dict[str, Any]) -> Optional[FaultSpec]:
        """Record one hit of ``site``; return the spec that should fire."""
        with self._lock:
            self._invocations[site] = self._invocations.get(site, 0) + 1
            firing = None
            for spec in self.specs:
                if spec.site != site or not spec.accepts(ctx):
                    continue
                key = id(spec)
                self._counts[key] = self._counts.get(key, 0) + 1
                count = self._counts[key]
                if spec.at <= count < spec.at + spec.times and firing is None:
                    firing = spec
            if firing is not None:
                self.fired.append((site, self._invocations[site]))
            return firing


_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = threading.Lock()


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide (returns the previous plan)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = plan
    return previous


def clear_plan() -> None:
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope a plan installation (the chaos-test entry point)."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def maybe_inject(site: str, **ctx: Any) -> None:
    """The instrumentation hook: a no-op unless an installed plan fires.

    ``action="raise"`` raises :class:`InjectedFault`; ``action="hang"``
    sleeps ``hang_seconds`` (long enough for a watchdog to trip) and then
    returns normally.
    """
    plan = _ACTIVE
    if plan is None:
        return
    if site not in FAULT_SITES:
        raise ValueError(f"maybe_inject at unregistered site {site!r}")
    spec = plan.observe(site, ctx)
    if spec is None:
        return
    if spec.action == "hang":
        time.sleep(spec.hang_seconds)
        return
    raise InjectedFault(site, plan.invocations(site))


def sites_by_category(category: str) -> Sequence[FaultSite]:
    """All registered sites of one category (chaos-suite helper)."""
    return tuple(s for s in FAULT_SITES.values() if s.category == category)
