"""Resilient compilation & execution: fault injection, checkpointed
pipeline recovery, and graceful degradation.

Submodules
----------
``faults``
    Deterministic, seedable fault injection (:data:`FAULT_SITES`,
    :class:`FaultPlan`, :func:`maybe_inject`). Stdlib-only so low-level
    modules can instrument themselves without cycles.
``report``
    :class:`RecoveryReport` — the structured audit trail of every retry,
    degradation and fallback (RS-coded diagnostics).
``watchdog``
    Wall-clock budgets for executions (:class:`TimeoutDiagnostic`).
``checkpoint``
    Solver checkpoint/restart with bit-identical resume.
``driver``
    :class:`ResilientCompiler` / :class:`ResilientPassManager` — the
    snapshot-retry + degradation-chain pipeline driver.
``execution``
    Guarded kernel execution returning structured results.

This ``__init__`` exposes the public names lazily (PEP 562): ``faults``
is imported by ``repro.ir.pass_manager``, so importing the heavy driver
eagerly here would create a cycle.
"""

from __future__ import annotations

from repro.runtime.resilience.faults import (  # noqa: F401 - re-exported
    FAULT_SITES,
    FaultPlan,
    FaultSite,
    FaultSpec,
    InjectedFault,
    clear_plan,
    injected,
    install_plan,
    maybe_inject,
)

_LAZY = {
    "RecoveryReport": ("repro.runtime.resilience.report", "RecoveryReport"),
    "AttemptRecord": ("repro.runtime.resilience.report", "AttemptRecord"),
    "TimeoutDiagnostic": (
        "repro.runtime.resilience.watchdog", "TimeoutDiagnostic"
    ),
    "ExecutionTimeout": (
        "repro.runtime.resilience.watchdog", "ExecutionTimeout"
    ),
    "call_with_watchdog": (
        "repro.runtime.resilience.watchdog", "call_with_watchdog"
    ),
    "Checkpoint": ("repro.runtime.resilience.checkpoint", "Checkpoint"),
    "CheckpointManager": (
        "repro.runtime.resilience.checkpoint", "CheckpointManager"
    ),
    "run_checkpointed": (
        "repro.runtime.resilience.checkpoint", "run_checkpointed"
    ),
    "ResilientCompiler": ("repro.runtime.resilience.driver", "ResilientCompiler"),
    "ResilientPassManager": (
        "repro.runtime.resilience.driver", "ResilientPassManager"
    ),
    "InterpreterKernel": (
        "repro.runtime.resilience.driver", "InterpreterKernel"
    ),
    "ResilienceExhausted": (
        "repro.runtime.resilience.driver", "ResilienceExhausted"
    ),
    "degradation_chain": (
        "repro.runtime.resilience.driver", "degradation_chain"
    ),
    "ExecutionResult": ("repro.runtime.resilience.execution", "ExecutionResult"),
    "execute_kernel": ("repro.runtime.resilience.execution", "execute_kernel"),
    "guarded_compile": ("repro.runtime.resilience.execution", "guarded_compile"),
}

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSite",
    "FaultSpec",
    "InjectedFault",
    "clear_plan",
    "injected",
    "install_plan",
    "maybe_inject",
    *_LAZY,
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
