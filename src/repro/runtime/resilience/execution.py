"""Guarded kernel execution: structured diagnostics, never raw tracebacks.

Wraps the three executor failure modes — missing entry point, a kernel
raising mid-execution, and a watchdog timeout — into RS-coded
:class:`~repro.analysis.diagnostics.Diagnostic` values carried by an
:class:`ExecutionResult`, so callers branch on data instead of catching
arbitrary exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.codegen.executor import CompiledKernel, compile_function
from repro.codegen.python_backend import BackendError
from repro.runtime.resilience.watchdog import ExecutionTimeout, call_with_watchdog


@dataclass
class ExecutionResult:
    """Outcome of one guarded kernel call."""

    values: Optional[List[Any]]
    diagnostic: Optional[Diagnostic] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.diagnostic is None and self.error is None


def guarded_compile(
    module, entry: str = "kernel"
) -> Tuple[Optional[CompiledKernel], Optional[Diagnostic]]:
    """``compile_function`` that degrades failures to an RS005 diagnostic."""
    try:
        return compile_function(module, entry), None
    except BackendError as exc:
        return None, Diagnostic(
            "RS005", f"backend rejected entry point {entry!r}: {exc}"
        )
    except Exception as exc:  # noqa: BLE001 - degrade, never crash
        return None, Diagnostic(
            "RS005",
            f"compiling entry {entry!r} failed: "
            f"{type(exc).__name__}: {exc}",
        )


def execute_kernel(
    kernel,
    *args: Any,
    timeout: Optional[float] = None,
    what: Optional[str] = None,
) -> ExecutionResult:
    """Run ``kernel.run(*args)``, optionally under the wall-clock watchdog.

    Any failure is returned as a structured result: RS006 for a watchdog
    timeout (with the :class:`TimeoutDiagnostic` rendered into the
    message), RS005 for an exception escaping the kernel.
    """
    label = what or f"kernel {getattr(kernel, 'entry', '?')!r}"
    try:
        if timeout is not None:
            values = call_with_watchdog(
                lambda: kernel.run(*args), timeout, what=label
            )
        else:
            values = kernel.run(*args)
    except ExecutionTimeout as exc:
        return ExecutionResult(None, exc.info.to_diagnostic(), exc)
    except Exception as exc:  # noqa: BLE001 - degrade, never crash
        return ExecutionResult(
            None,
            Diagnostic(
                "RS005",
                f"{label} raised mid-execution: "
                f"{type(exc).__name__}: {exc}",
            ),
            exc,
        )
    return ExecutionResult(list(values))
