"""The resilient pipeline driver: snapshot-retry, degrade, never die.

:class:`ResilientCompiler` wraps the :class:`~repro.core.pipeline
.StencilCompiler` flow with three recovery layers:

1. **Snapshot retry** — :class:`ResilientPassManager` prints the IR after
   every successful pass; when a pass (or the verifier, the analysis
   gate, or the translation validator) raises, the last-good snapshot is
   re-parsed and the pass retried with exponential backoff (transient
   faults — the fault-injection framework's bread and butter — succeed
   on retry).
2. **Degradation chain** — when retries are exhausted the whole compile
   is reattempted at a weaker configuration: ``opt_level`` steps down to
   0, then vectorization is disabled, then fusion. Every step is
   recorded as an RS002 event.
3. **Interpreter fallback** — when no compiled configuration survives,
   the pristine (pre-pipeline) module runs on the reference interpreter
   (:class:`InterpreterKernel`), recorded as RS003. Slow, but
   numerically identical and unconditionally available.

Every decision lands in a :class:`~repro.runtime.resilience.report
.RecoveryReport`; no raw traceback escapes :meth:`ResilientCompiler
.compile` or :meth:`ResilientCompiler.compile_and_run` short of
:class:`ResilienceExhausted`, which carries the full report.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.ir.parser import parse_module
from repro.ir.pass_manager import Pass, PassManager
from repro.ir.printer import print_module
from repro.runtime.resilience.execution import ExecutionResult, execute_kernel
from repro.runtime.resilience.report import AttemptRecord, RecoveryReport


class ResilienceExhausted(RuntimeError):
    """Even the interpreter fallback failed; carries the full report."""

    def __init__(self, report: RecoveryReport, message: str) -> None:
        self.report = report
        super().__init__(f"{message}\n{report.render()}")


class InterpreterKernel:
    """A :class:`CompiledKernel`-compatible wrapper over the interpreter.

    Holds the pristine module as printed IR and re-parses per call (the
    interpreter consumes argument arrays; a fresh module per call keeps
    repeated invocations independent). ``.source`` is the IR text — there
    is no generated Python for the fallback path.
    """

    def __init__(self, ir_text: str, entry: str = "kernel") -> None:
        self.source = ir_text
        self.entry = entry

    def run(self, *args: Any) -> List[Any]:
        from repro.codegen.interpreter import Interpreter

        module = parse_module(self.source)
        return Interpreter(module).run(self.entry, *args)

    def __call__(self, *args: Any):
        return tuple(self.run(*args))

    def __repr__(self) -> str:
        return f"InterpreterKernel(entry={self.entry!r})"


class ResilientPassManager(PassManager):
    """A :class:`PassManager` that retries failed passes from IR snapshots.

    After every successful pass the module is re-printed; a failing pass
    restores the last-good text (``parse_module``) and retries up to
    ``max_retries`` times with exponential backoff before re-raising.
    Because restoration swaps the module *object*, :meth:`run` returns
    the surviving module and callers must use the return value.
    """

    def __init__(
        self,
        passes=(),
        max_retries: int = 2,
        backoff_base: float = 0.005,
        report: Optional[RecoveryReport] = None,
        **kwargs,
    ) -> None:
        super().__init__(passes, **kwargs)
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.report = report if report is not None else RecoveryReport()

    @classmethod
    def from_manager(cls, pm: PassManager, **kwargs) -> "ResilientPassManager":
        """Adopt an existing manager's pipeline, hooks and settings."""
        return cls(
            pm.passes,
            verify_each=pm.verify_each,
            gate=pm.gate,
            gate_each=pm.gate_each,
            validator=pm.validator,
            **kwargs,
        )

    def run(self, module):
        if self.validator is not None:
            self._run_validator(module, None)
        snapshot = print_module(module)
        for pass_ in self.passes:
            module, snapshot = self._run_with_recovery(pass_, module, snapshot)
        if self.gate is not None and not self.gate_each:
            self._run_gate(module, after_pass=None)
        return module

    def _run_with_recovery(self, pass_: Pass, module, snapshot: str):
        for attempt in range(self.max_retries + 1):
            try:
                self._run_single(pass_, module)
            except Exception as exc:
                if attempt == self.max_retries:
                    raise
                self.report.add_event(
                    "RS001",
                    f"pass {pass_.name!r} failed "
                    f"({type(exc).__name__}: {exc}); restoring last-good "
                    f"IR snapshot and retrying "
                    f"(attempt {attempt + 1}/{self.max_retries})",
                )
                time.sleep(self.backoff_base * (2 ** attempt))
                module = parse_module(snapshot)
            else:
                return module, print_module(module)
        raise AssertionError("unreachable")  # pragma: no cover


def degradation_chain(
    options: CompileOptions,
) -> Iterator[Tuple[str, CompileOptions]]:
    """The policy chain: requested config first, then weaker and weaker.

    ``opt_level`` steps down to 0, then vectorization is disabled, then
    fusion (with its cache tiling). The interpreter fallback is not part
    of the chain — the driver appends it unconditionally.
    """
    current = dataclasses.replace(options)
    yield "as-requested", current
    while current.opt_level > 0:
        current = dataclasses.replace(current, opt_level=current.opt_level - 1)
        yield f"opt_level -> O{current.opt_level}", current
    if current.vectorize:
        current = dataclasses.replace(current, vectorize=0)
        yield "vectorization -> off", current
    if current.fuse:
        current = dataclasses.replace(current, fuse=False)
        yield "fusion -> off", current


class ResilientCompiler:
    """Drives a module to an executable kernel, surviving faults.

    Parameters
    ----------
    options:
        The requested configuration (the head of the degradation chain).
        The driver always runs the pipeline itself — the process-wide
        kernel cache is not consulted, so every fault site is actually
        exercised.
    max_retries:
        Per-pass snapshot retries *and* whole-attempt retries per chain
        step *and* execution retries in :meth:`compile_and_run`.
    backoff_base:
        First backoff sleep in seconds; doubles per retry.
    watchdog_timeout:
        Wall-clock budget per kernel execution in
        :meth:`compile_and_run`; ``None`` disables the watchdog.
    use_certificates:
        Consult (and widen) the process-wide certificate memo
        (:mod:`repro.codegen.certificates`) per attempt: a fingerprint
        already certified clean skips the analysis gate and the
        translation validator, and a clean verified attempt records its
        certificate — so the compile service's warm path stays cheap
        with ``validate_passes=True`` even across processes (the memo's
        disk tier). The *kernel* cache is still never consulted, so
        every pipeline fault site stays exercised.
    """

    def __init__(
        self,
        options: Optional[CompileOptions] = None,
        max_retries: int = 2,
        backoff_base: float = 0.005,
        watchdog_timeout: Optional[float] = None,
        use_certificates: bool = True,
    ) -> None:
        self.options = options or CompileOptions()
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.watchdog_timeout = watchdog_timeout
        self.use_certificates = use_certificates
        self._pristine: Optional[str] = None
        #: The :class:`CompileOptions` that finally produced a kernel
        #: (``None`` until :meth:`compile` succeeds, or when the
        #: interpreter fallback engaged). The service uses this to key
        #: degraded kernels under their *actual* configuration.
        self.final_options: Optional[CompileOptions] = None

    # ---- compilation ----------------------------------------------------

    def compile(
        self, module, entry: str = "kernel"
    ) -> Tuple[Any, RecoveryReport]:
        """Compile resiliently; returns ``(kernel, report)``.

        The input module is never consumed: each attempt re-parses the
        pristine printed IR, so a half-transformed state can never leak
        into the next attempt.
        """
        report = RecoveryReport()
        pristine = print_module(module)
        self._pristine = pristine
        self.final_options = None
        for step, (label, opts) in enumerate(degradation_chain(self.options)):
            if step:
                report.degradations.append(label)
                report.add_event(
                    "RS002",
                    f"degrading configuration: {label} "
                    f"(now {opts.describe()})",
                )
            kernel = self._attempt_with_retries(pristine, opts, entry, report)
            if kernel is not None:
                report.final = "compiled"
                report.final_options = opts.describe()
                self.final_options = opts
                return kernel, report
        report.add_event(
            "RS003",
            "every compiled configuration failed; falling back to the "
            "reference interpreter on the pristine module",
        )
        report.final = "interpreter"
        report.final_options = "interpreter"
        return InterpreterKernel(pristine, entry), report

    def _attempt_with_retries(
        self,
        pristine: str,
        opts: CompileOptions,
        entry: str,
        report: RecoveryReport,
    ) -> Optional[Any]:
        for attempt in range(self.max_retries + 1):
            try:
                kernel = self._attempt(pristine, opts, entry, report)
            except Exception as exc:  # noqa: BLE001 - recorded, then degrade
                report.attempts.append(AttemptRecord(
                    opts.describe(), "failed", error=f"{type(exc).__name__}: {exc}"
                ))
                if attempt == self.max_retries:
                    return None
                report.add_event(
                    "RS001",
                    f"compile attempt at {opts.describe()} failed "
                    f"({type(exc).__name__}: {exc}); retrying "
                    f"(attempt {attempt + 1}/{self.max_retries})",
                )
                time.sleep(self.backoff_base * (2 ** attempt))
            else:
                report.attempts.append(AttemptRecord(opts.describe(), "ok"))
                return kernel
        return None

    def _attempt(
        self,
        pristine: str,
        opts: CompileOptions,
        entry: str,
        report: RecoveryReport,
    ):
        from repro.codegen.executor import compile_function

        work = parse_module(pristine)
        skip_gate = skip_tv = False
        memo = fingerprint = None
        wants_verification = opts.check_level != "off" or opts.validate_passes
        if self.use_certificates and wants_verification:
            from repro.codegen.cache import module_fingerprint
            from repro.codegen.certificates import default_memo

            fingerprint = module_fingerprint(work, entry, opts.cache_key())
            memo = default_memo()
            cert = memo.get(fingerprint)
            if cert is not None:
                skip_gate = (
                    opts.check_level != "off"
                    and cert.covers_gate(opts.check_level)
                )
                skip_tv = opts.validate_passes and cert.validated
        pm = ResilientPassManager.from_manager(
            StencilCompiler(opts).build_pipeline(
                skip_gate=skip_gate, skip_validation=skip_tv
            ),
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            report=report,
        )
        lowered = pm.run(work)
        kernel = compile_function(lowered, entry)
        if memo is not None:
            memo.record(
                fingerprint,
                check_level=None if skip_gate else opts.check_level,
                validated=opts.validate_passes and not skip_tv,
            )
        return kernel

    # ---- execution ------------------------------------------------------

    def compile_and_run(
        self,
        module,
        make_args: Callable[[], Tuple[Any, ...]],
        entry: str = "kernel",
    ) -> Tuple[List[Any], RecoveryReport]:
        """Compile resiliently, then execute with guarded retries.

        ``make_args`` must return a *fresh* argument tuple per call (the
        generated kernels may write into their output argument, so a
        retried execution needs untouched inputs). Execution failures and
        timeouts retry up to ``max_retries`` times, then degrade to the
        interpreter fallback; if even that fails,
        :class:`ResilienceExhausted` is raised with the report attached.
        """
        kernel, report = self.compile(module, entry)
        result = self._execute_with_retries(kernel, make_args, report)
        if result is not None:
            return result, report
        if not isinstance(kernel, InterpreterKernel):
            report.add_event(
                "RS003",
                "compiled kernel kept failing at execution time; falling "
                "back to the reference interpreter",
            )
            report.final = "interpreter"
            report.final_options = "interpreter"
            self.final_options = None
            fallback = InterpreterKernel(self._pristine, entry)
            outcome = execute_kernel(fallback, *make_args())
            if outcome.ok:
                report.attempts.append(
                    AttemptRecord("interpreter", "ok", stage="execute")
                )
                return outcome.values, report
            report.events.append(outcome.diagnostic)
        raise ResilienceExhausted(
            report, "execution failed on every backend including the "
            "interpreter fallback"
        )

    def _execute_with_retries(
        self,
        kernel,
        make_args: Callable[[], Tuple[Any, ...]],
        report: RecoveryReport,
    ) -> Optional[List[Any]]:
        label = f"entry {getattr(kernel, 'entry', '?')!r}"
        for attempt in range(self.max_retries + 1):
            outcome: ExecutionResult = execute_kernel(
                kernel, *make_args(), timeout=self.watchdog_timeout, what=label
            )
            if outcome.ok:
                report.attempts.append(
                    AttemptRecord(label, "ok", stage="execute")
                )
                return outcome.values
            report.events.append(outcome.diagnostic)
            report.attempts.append(AttemptRecord(
                label, "failed", stage="execute",
                error=outcome.diagnostic.message,
            ))
            if attempt < self.max_retries:
                time.sleep(self.backoff_base * (2 ** attempt))
        return None
