"""Runtime services layered above the compiler: resilience, recovery."""
