"""The wavefront dispatcher called by generated kernels.

One call executes one CSR schedule instance: groups in order, blocks of
a group either fanned out over the shared worker pool or run on the
calling thread. The generated code passes a *block closure* — the body
of one sub-domain tile, closed over the sweep's shared NumPy buffers —
plus two flags the compiler computed: ``certified`` (the race analyzer
found no IP-diagnostic) and ``inplace`` (the emitted body mutates
buffers in place instead of rebinding SSA names).

Degradation (RS010): a worker exception stops that worker's chunk; the
barrier still joins, then the blocks that did not complete re-run
sequentially on the calling thread and every later group stays
sequential. Completed blocks are never re-run, so in-place block bodies
recover bit-identically. Refusal (RS011): a multi-thread request on an
uncertified or non-in-place kernel runs sequentially and records why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.runtime.parallel.pool import get_num_threads, get_pool
from repro.runtime.resilience.faults import maybe_inject

#: Dropping old events beats unbounded growth inside a long time loop.
_MAX_EVENTS = 64

_events: List[Any] = []
_events_dropped = 0
_last_stats: Optional["DispatchStats"] = None


@dataclass
class DispatchStats:
    """What one :func:`dispatch_wavefronts` call actually did."""

    groups: int = 0
    blocks: int = 0
    #: Groups fanned out over the pool / run inline (size 1) / run
    #: block-by-block on the calling thread.
    parallel_groups: int = 0
    inline_groups: int = 0
    sequential_groups: int = 0
    requested_threads: int = 1
    #: None when the request was honored; otherwise why dispatch refused
    #: to go parallel ("uncertified", "not-inplace").
    refusal: Optional[str] = None
    #: Worker failures recovered by the sequential fallback.
    worker_failures: int = 0
    degraded: bool = False
    #: Blocks re-executed sequentially after a worker failure.
    recovered_blocks: int = 0
    errors: List[str] = field(default_factory=list)


def last_dispatch_stats() -> Optional[DispatchStats]:
    """Stats of the most recent dispatch in this process."""
    return _last_stats


def reset_dispatch_stats() -> None:
    global _last_stats
    _last_stats = None


def drain_events() -> List[Any]:
    """Pop the accumulated RS010/RS011 diagnostics (oldest first)."""
    global _events, _events_dropped
    out, _events = _events, []
    _events_dropped = 0
    return out


def _add_event(code: str, message: str) -> None:
    global _events_dropped
    from repro.analysis.diagnostics import REGISTRY, Diagnostic

    if len(_events) >= _MAX_EVENTS:
        _events_dropped += 1
        return
    _events.append(Diagnostic(code, message, severity=REGISTRY[code].severity))


def _run_chunk(
    chunk, block_fn: Callable[[int], None], done: List[int], failures: List
) -> None:
    """Worker body: one contiguous slice of a group's block list.

    ``done.append`` is atomic under the GIL, so the recovery path can
    trust it without a lock; a failure stops this chunk only — the
    group barrier still joins the other workers.
    """
    for lin in chunk:
        try:
            maybe_inject("parallel.worker", block=int(lin))
            block_fn(lin)
        except Exception as exc:  # noqa: BLE001 - degrade, never crash
            failures.append((lin, exc))
            return
        done.append(lin)


def dispatch_wavefronts(
    offsets,
    indices,
    block_fn: Callable[[int], None],
    inplace: bool = True,
    certified: bool = False,
) -> DispatchStats:
    """Execute one CSR wavefront schedule; returns the dispatch stats."""
    global _last_stats
    stats = DispatchStats(requested_threads=get_num_threads())
    _last_stats = stats
    threads = stats.requested_threads
    if threads > 1 and not certified:
        stats.refusal = "uncertified"
        _add_event(
            "RS011",
            f"refusing {threads}-thread dispatch: kernel carries no "
            "parallel-safety certificate; executing sequentially",
        )
        threads = 1
    elif threads > 1 and not inplace:
        stats.refusal = "not-inplace"
        _add_event(
            "RS011",
            f"refusing {threads}-thread dispatch: block body rebinds "
            "SSA values across blocks; executing sequentially",
        )
        threads = 1
    pool = get_pool(threads) if threads > 1 else None
    for g in range(len(offsets) - 1):
        group = indices[offsets[g] : offsets[g + 1]]
        stats.groups += 1
        stats.blocks += len(group)
        if pool is None or len(group) < 2:
            if len(group) == 1:
                stats.inline_groups += 1
            elif len(group) > 1:
                stats.sequential_groups += 1
            for lin in group:
                block_fn(lin)
            continue
        per = -(-len(group) // threads)
        chunks = [
            group[i * per : (i + 1) * per]
            for i in range(threads)
            if i * per < len(group)
        ]
        done: List[int] = []
        failures: List = []
        futures = [
            pool.submit(_run_chunk, chunk, block_fn, done, failures)
            for chunk in chunks
        ]
        for future in futures:  # the group barrier
            future.result()
        if failures:
            stats.worker_failures += len(failures)
            stats.degraded = True
            stats.errors.extend(
                f"block {lin}: {type(exc).__name__}: {exc}"
                for lin, exc in failures
            )
            done_set = set(int(d) for d in done)
            recover = [lin for lin in group if int(lin) not in done_set]
            stats.recovered_blocks += len(recover)
            _add_event(
                "RS010",
                f"worker failed in wavefront group {g} "
                f"({stats.errors[-1]}); re-running {len(recover)} "
                f"block(s) sequentially and degrading the remaining "
                f"{len(offsets) - 2 - g} group(s)",
            )
            for lin in recover:
                block_fn(lin)
            stats.sequential_groups += 1
            pool = None  # every later group stays sequential
        else:
            stats.parallel_groups += 1
    return stats
