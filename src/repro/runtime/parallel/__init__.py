"""Real multithreaded wavefront execution.

The compiler's grouped ``cfd.tiled_loop`` carries a CSR wavefront
schedule (``cfd.get_parallel_blocks``, §2.3): groups execute in order,
and the sub-domain blocks *within* one group are mutually independent.
This package executes that schedule on actual worker threads: the
generated kernel hands each group's block list to
:func:`dispatch_wavefronts`, which fans the blocks out over a shared
thread pool (NumPy slice kernels release the GIL in C) and joins at a
barrier before the next group.

Safety model
------------

Parallel dispatch is *refused* — the schedule runs sequentially, with an
RS011 event — unless every precondition holds:

* the kernel carries a parallel-safety certificate (the PR-2 race
  analyzer found no IP-diagnostic on the lowered module; see
  :meth:`repro.core.pipeline.StencilCompiler.compile`);
* the emitted block body is fully in-place (no SSA rebinding across
  blocks — the backend marks this per loop);
* more than one worker thread is requested (:func:`get_num_threads`).

A worker exception degrades the dispatch to sequential execution
(RS010, the RS002-style policy: recover, never crash): blocks that
completed are not re-run, the failed and remaining blocks re-execute on
the calling thread, and all later groups stay sequential.
"""

from repro.runtime.parallel.dispatch import (
    DispatchStats,
    dispatch_wavefronts,
    drain_events,
    last_dispatch_stats,
    reset_dispatch_stats,
)
from repro.runtime.parallel.pool import (
    get_num_threads,
    num_threads,
    set_num_threads,
    shutdown_pools,
)

__all__ = [
    "DispatchStats",
    "dispatch_wavefronts",
    "drain_events",
    "get_num_threads",
    "last_dispatch_stats",
    "num_threads",
    "reset_dispatch_stats",
    "set_num_threads",
    "shutdown_pools",
]
