"""Worker-thread pools and the thread-count knob.

The thread count is an explicit opt-in: it defaults to 1 (sequential)
unless ``$REPRO_THREADS`` is set or :func:`set_num_threads` /
:func:`num_threads` is used. Pools are created lazily per thread count
and reused across dispatches — a kernel stepping a time loop re-enters
the same pool every sweep instead of paying thread start-up each time.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Hard ceiling on worker threads; far above any sane request, it only
#: bounds the damage of a typo'd ``REPRO_THREADS``.
MAX_THREADS = 256

_override: Optional[int] = None
_pools: Dict[int, ThreadPoolExecutor] = {}
_lock = threading.Lock()


def _clamp(n: int) -> int:
    return max(1, min(int(n), MAX_THREADS))


def get_num_threads() -> int:
    """The currently requested worker count.

    Priority: :func:`set_num_threads` / :func:`num_threads` override,
    then ``$REPRO_THREADS`` (first entry if a comma list), then 1.
    """
    if _override is not None:
        return _override
    raw = os.environ.get("REPRO_THREADS", "").strip()
    if raw:
        try:
            return _clamp(int(raw.split(",")[0]))
        except ValueError:
            return 1
    return 1


def set_num_threads(n: Optional[int]) -> Optional[int]:
    """Set (or with ``None`` clear) the process-wide thread override;
    returns the previous override."""
    global _override
    previous = _override
    _override = None if n is None else _clamp(n)
    return previous


@contextmanager
def num_threads(n: int) -> Iterator[int]:
    """Scoped thread-count override (tests and benchmarks)."""
    previous = set_num_threads(n)
    try:
        yield get_num_threads()
    finally:
        set_num_threads(previous)


def get_pool(threads: int) -> ThreadPoolExecutor:
    """The shared pool for ``threads`` workers (created on first use)."""
    threads = _clamp(threads)
    with _lock:
        pool = _pools.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads,
                thread_name_prefix=f"repro-wavefront-{threads}",
            )
            _pools[threads] = pool
        return pool


def shutdown_pools() -> None:
    """Tear down every cached pool (test isolation helper)."""
    with _lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True)
