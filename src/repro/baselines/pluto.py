"""A Pluto-like polyhedral baseline (§4.1).

Pluto parallelizes in-place stencils with *skewed parallelogram tiles*
aligned with the wavefronts, and its generated code fails to vectorize
the in-place inner loops (the paper's explanation of Fig. 11's gap).
This module reproduces both properties:

* a generic **skewed wavefront executor**: the iteration space (optionally
  including the time dimension, Pluto configuration 1) is skewed until
  every dependence distance is non-negative, tiled rectangularly in the
  skewed coordinates, and tiles execute wavefront by wavefront (sum of
  tile coordinates);
* cell updates run **scalar** (one Python statement per cell), the analog
  of unvectorized C in this reproduction's performance model;
* for the out-of-place Jacobi comparison, a vectorized variant is
  provided (Pluto's parallelogram tiles do not hamper vectorizing
  out-of-place stencils, §4.1 last paragraph).

Configuration 1 tiles time + space (scop around the whole kernel);
configuration 2 tiles space only, once per sweep.

Because Gauss-Seidel is a deterministic dataflow, any dependence-
respecting execution order yields bit-identical results — correctness of
the exotic traversals is asserted against the plain lexicographic sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines import naive
from repro.core.stencil import StencilPattern


@dataclass
class PlutoOptions:
    """Mirror of ``pluto --parallel --tile`` with the two scop placements
    of §4.1 (variant 1: time+space; variant 2: space only)."""

    variant: int = 1
    tile_sizes: Tuple[int, ...] = (16, 16)
    time_tile: int = 4

    def __post_init__(self) -> None:
        if self.variant not in (1, 2):
            raise ValueError("Pluto variant must be 1 or 2")


def spatial_skew_factors(pattern: StencilPattern) -> List[int]:
    """Skews of each spatial dim w.r.t. dim 0 making intra-sweep
    dependence distances non-negative (Pluto's legality transform).

    The distance of an L offset ``o`` is ``-o``; a negative trailing
    distance (``o_d > 0`` with ``o_0 < 0``, e.g. the 9-point ``(-1, 1)``)
    requires skewing dim ``d`` by dim 0.
    """
    factors = [0] * pattern.rank
    for o in pattern.schedule_relevant_offsets():
        if o[0] < 0:
            for d in range(1, pattern.rank):
                if o[d] > 0:
                    # need f_d * (-o_0) >= o_d
                    needed = -(-o[d] // -o[0])  # ceil(o_d / -o_0)
                    factors[d] = max(factors[d], needed)
    return factors


def time_skew_factors(pattern: StencilPattern) -> List[int]:
    """Skews of each spatial dim w.r.t. time making inter-sweep
    dependence distances ``(1, -u)`` non-negative: ``g_d = max(0, u_d)``.
    """
    factors = []
    for d in range(pattern.rank):
        hi = max([0] + [o[d] for o in pattern.u_offsets])
        factors.append(hi)
    return factors


class PlutoStencil:
    """Executes an iterative in-place stencil the way Pluto would."""

    def __init__(
        self,
        pattern: StencilPattern,
        d: float,
        options: PlutoOptions = None,
    ) -> None:
        if pattern.sweep != 1:
            raise ValueError("the Pluto baseline models forward sweeps")
        self.pattern = pattern
        self.d = float(d)
        self.options = options or PlutoOptions()
        if len(self.options.tile_sizes) != pattern.rank:
            raise ValueError("tile_sizes rank must match the pattern")
        #: Filled by :meth:`run`: tiles per wavefront, for the simulator.
        self.last_wavefront_sizes: List[int] = []

    # ---- public API -------------------------------------------------------

    def run(self, u: np.ndarray, b: np.ndarray, iterations: int) -> np.ndarray:
        """Apply ``iterations`` in-place sweeps; returns the updated array
        (the input is not modified)."""
        u = u.copy()
        if self.options.variant == 1:
            self._run_time_space(u, b, iterations)
        else:
            for _ in range(iterations):
                self._run_space(u, b)
        return u

    # ---- variant 2: space-only skewed tiling ---------------------------------

    def _run_space(self, u: np.ndarray, b: np.ndarray) -> None:
        pattern = self.pattern
        bounds = pattern.interior_bounds(u.shape)
        skews = spatial_skew_factors(pattern)
        tiles = self.options.tile_sizes
        lo = [lb for lb, _ in bounds]
        hi = [ub for _, ub in bounds]
        # Skewed coordinate d' = x_d + skews[d] * x_0; skewed extents:
        s_lo = [lo[0]] + [
            lo[d] + skews[d] * lo[0] for d in range(1, pattern.rank)
        ]
        s_hi = [hi[0]] + [
            hi[d] + skews[d] * (hi[0] - 1) for d in range(1, pattern.rank)
        ]
        grid = [
            max(0, -(-(s_hi[d] - s_lo[d]) // tiles[d]))
            for d in range(pattern.rank)
        ]
        wave_sizes: Dict[int, int] = {}
        accesses = pattern.accesses
        d_const = self.d
        for tile in itertools.product(*(range(g) for g in grid)):
            wave_sizes[sum(tile)] = wave_sizes.get(sum(tile), 0) + 1
        self.last_wavefront_sizes = [
            wave_sizes[w] for w in sorted(wave_sizes)
        ]
        for wave in sorted(wave_sizes):
            for tile in itertools.product(*(range(g) for g in grid)):
                if sum(tile) != wave:
                    continue
                self._execute_space_tile(
                    u, b, tile, tiles, s_lo, s_hi, skews, lo, hi,
                    accesses, d_const,
                )

    def _execute_space_tile(
        self, u, b, tile, tiles, s_lo, s_hi, skews, lo, hi, accesses, d_const
    ) -> None:
        rank = self.pattern.rank
        ranges = []
        for d in range(rank):
            start = s_lo[d] + tile[d] * tiles[d]
            stop = min(start + tiles[d], s_hi[d])
            ranges.append(range(start, stop))
        for skewed in itertools.product(*ranges):
            x0 = skewed[0]
            cell = [x0]
            ok = lo[0] <= x0 < hi[0]
            for d in range(1, rank):
                xd = skewed[d] - skews[d] * x0
                cell.append(xd)
                ok = ok and lo[d] <= xd < hi[d]
            if not ok:
                continue
            cell_t = tuple(cell)
            total = b[cell_t]
            for offset, _tag in accesses:
                total += u[tuple(c + o for c, o in zip(cell_t, offset))]
            u[cell_t] = total / d_const

    # ---- variant 1: time + space skewed tiling -----------------------------

    def _run_time_space(
        self, u: np.ndarray, b: np.ndarray, iterations: int
    ) -> None:
        pattern = self.pattern
        rank = pattern.rank
        bounds = pattern.interior_bounds(u.shape)
        lo = [lb for lb, _ in bounds]
        hi = [ub for _, ub in bounds]
        g = time_skew_factors(pattern)  # spatial skew per unit time
        f = spatial_skew_factors(pattern)  # intra-space skew
        tiles = (self.options.time_tile,) + tuple(self.options.tile_sizes)
        # Skewed coords: t' = t; x0' = x0 + g0 t;
        # xd' = (xd + gd t) + f_d * (x0 + g0 t)  for d >= 1.
        s_lo = [0, lo[0]]
        s_hi = [iterations, hi[0] + g[0] * (iterations - 1)]
        for d in range(1, rank):
            s_lo.append(lo[d] + f[d] * lo[0])
            s_hi.append(
                hi[d]
                + g[d] * (iterations - 1)
                + f[d] * (hi[0] + g[0] * (iterations - 1) - 1)
            )
        grid = [
            max(0, -(-(s_hi[d] - s_lo[d]) // tiles[d]))
            for d in range(rank + 1)
        ]
        wave_sizes: Dict[int, int] = {}
        for tile in itertools.product(*(range(x) for x in grid)):
            wave_sizes[sum(tile)] = wave_sizes.get(sum(tile), 0) + 1
        self.last_wavefront_sizes = [
            wave_sizes[w] for w in sorted(wave_sizes)
        ]
        accesses = pattern.accesses
        d_const = self.d
        for wave in sorted(wave_sizes):
            for tile in itertools.product(*(range(x) for x in grid)):
                if sum(tile) != wave:
                    continue
                ranges = []
                for d in range(rank + 1):
                    start = s_lo[d] + tile[d] * tiles[d]
                    stop = min(start + tiles[d], s_hi[d])
                    ranges.append(range(start, stop))
                for skewed in itertools.product(*ranges):
                    t = skewed[0]
                    x0 = skewed[1] - g[0] * t
                    if not (0 <= t < iterations and lo[0] <= x0 < hi[0]):
                        continue
                    cell = [x0]
                    ok = True
                    for d in range(1, rank):
                        xd = skewed[1 + d] - g[d] * t - f[d] * skewed[1]
                        cell.append(xd)
                        ok = ok and lo[d] <= xd < hi[d]
                    if not ok:
                        continue
                    cell_t = tuple(cell)
                    total = b[cell_t]
                    for offset, _tag in accesses:
                        total += u[
                            tuple(c + o for c, o in zip(cell_t, offset))
                        ]
                    u[cell_t] = total / d_const


def pluto_jacobi(
    u: np.ndarray,
    b: np.ndarray,
    pattern: StencilPattern,
    d: float,
    iterations: int,
) -> np.ndarray:
    """Pluto on the out-of-place Jacobi stencil: parallelogram tiles do
    not impede vectorization there, so this runs at full NumPy speed —
    the §4.1 "about 90% / 110%" comparison point."""
    return naive.iterate(naive.jacobi_sweep, u.copy(), b, pattern, d, iterations)
