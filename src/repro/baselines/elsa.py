"""An elsA-like hand-optimized LU-SGS solver (the Fig. 15 comparator).

The paper reports that ONERA's elsA framework implements, *by hand*, the
same optimization recipe the code generator produces: sub-domain
parallelism, fusion, cache blocking and vectorization. This module is
the analogous artifact at our scale: a hand-written NumPy LU-SGS whose
sweeps vectorize the B/U part over the contiguous ``k`` axis and resolve
the in-row recurrence scalar — the same structure as the generated code,
but written manually (and therefore the natural "industrial" comparator
for the generated solver).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cfdlib.boundary import add_ghost_layers, apply_periodic
from repro.cfdlib.lusgs import LUSGSConfig, compute_rhs, diagonal_and_radii


def elsa_sweeps(
    w: np.ndarray, rhs: np.ndarray, config: LUSGSConfig
) -> np.ndarray:
    """Hand-vectorized forward + backward sweeps.

    Per (i, j) row: the contributions of the ``i-1`` and ``j-1`` (resp.
    ``i+1``/``j+1``) neighbour planes are whole-row NumPy expressions; the
    ``k`` recurrence is a scalar loop — the manual analog of the partial
    vectorization of §2.4.
    """
    d_arr, coeffs = diagonal_and_radii(w, config)
    c0, c1, c2 = coeffs
    nz, ny, nx = w.shape[1:]
    dw = np.zeros_like(w)
    inv_d = 1.0 / d_arr
    # Forward sweep.
    for i in range(1, nz - 1):
        for j in range(1, ny - 1):
            acc = rhs[:, i, j, 1:-1].copy()
            acc += c0[i, j, 1:-1] * dw[:, i - 1, j, 1:-1]
            acc += c1[i, j, 1:-1] * dw[:, i, j - 1, 1:-1]
            row = dw[:, i, j]
            c_row = c2[i, j]
            d_row = inv_d[i, j]
            for k in range(1, nx - 1):
                row[:, k] = (acc[:, k - 1] + c_row[k] * row[:, k - 1]) * d_row[k]
    # Backward sweep (lower neighbours still hold the forward values).
    for i in range(nz - 2, 0, -1):
        for j in range(ny - 2, 0, -1):
            acc = rhs[:, i, j, 1:-1].copy()
            acc += c0[i, j, 1:-1] * dw[:, i - 1, j, 1:-1]
            acc += c1[i, j, 1:-1] * dw[:, i, j - 1, 1:-1]
            acc += c0[i, j, 1:-1] * dw[:, i + 1, j, 1:-1]
            acc += c1[i, j, 1:-1] * dw[:, i, j + 1, 1:-1]
            row = dw[:, i, j]
            c_row = c2[i, j]
            d_row = inv_d[i, j]
            for k in range(nx - 2, 0, -1):
                row[:, k] = (
                    acc[:, k - 1] + c_row[k] * (row[:, k - 1] + row[:, k + 1])
                ) * d_row[k]
    return dw


def elsa_step(w_padded: np.ndarray, config: LUSGSConfig) -> np.ndarray:
    """One implicit time step on a padded state (in place); returns it."""
    apply_periodic(w_padded)
    rhs = compute_rhs(w_padded, config)
    dw = elsa_sweeps(w_padded, rhs, config)
    inner = (slice(None),) + (slice(1, -1),) * 3
    w_padded[inner] += dw[inner]
    return w_padded


def elsa_solve(
    w0_interior: np.ndarray, config: LUSGSConfig, steps: int
) -> np.ndarray:
    """Run the hand-optimized solver; unpadded in, unpadded out."""
    w = add_ghost_layers(w0_interior)
    for _ in range(steps):
        elsa_step(w, config)
    inner = (slice(None),) + (slice(1, -1),) * 3
    return w[inner].copy()


def subdomain_wavefront_sizes(
    interior_shape: List[int], subdomain_sizes: List[int]
) -> List[int]:
    """Tiles per wavefront for elsA's sub-domain parallelism (it uses the
    same diagonal schedule); feeds the thread-scaling simulator."""
    from repro.core import scheduling

    grid = [
        max(1, -(-n // t)) for n, t in zip(interior_shape, subdomain_sizes)
    ]
    offsets, _ = scheduling.compute_parallel_blocks(
        grid, [(-1, 0, 0), (0, -1, 0), (0, 0, -1)]
    )
    return scheduling.group_sizes(offsets)
