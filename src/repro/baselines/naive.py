"""Naive reference implementations: the sequential baseline.

These direct lexicographic sweeps play the role of the PolyBench C
kernels compiled with ``clang -O3`` in §4.1 — they define both the
*semantics* every compiled kernel must reproduce and the *baseline time*
of every speedup plot.

Two flavors are provided:

* ``*_python``: pure-Python element loops calling a scalar kernel — the
  byte-for-byte reference used in correctness tests;
* ``*_rows``: a row-at-a-time variant that still honours the in-place
  dependences but uses NumPy for the U/B part; used as the timed
  "scalar C" stand-in where pure Python would be prohibitively slow.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Tuple

import numpy as np

from repro.core.stencil import StencilPattern

#: Scalar payload: (args per access + center, nv each) -> (d, contributions).
ScalarBody = Callable[[List[float]], Tuple[float, List[float]]]


def identity_scalar_body(d: float, nb_var: int = 1) -> ScalarBody:
    """The pure Gauss-Seidel payload matching
    :func:`repro.core.frontend.identity_body`: neighbors contribute
    themselves, the center contributes nothing."""

    def body(args: List[float]) -> Tuple[float, List[float]]:
        return d, list(args[: len(args) - nb_var]) + [0.0] * nb_var

    return body


def stencil_sweep_python(
    x: np.ndarray,
    b: np.ndarray,
    y: np.ndarray,
    pattern: StencilPattern,
    body: ScalarBody,
    nb_var: int = 1,
) -> np.ndarray:
    """One in-place sweep: the executable form of Eq. (2).

    ``y`` is updated and returned (the caller passes a copy when the
    original must be preserved). Visits interior cells in sweep-directed
    lexicographic order.
    """
    space_shape = y.shape[1:]
    bounds = pattern.interior_bounds(space_shape)
    ranges = [range(lo, hi) for lo, hi in bounds]
    if pattern.sweep == -1:
        ranges = [range(hi - 1, lo - 1, -1) for lo, hi in bounds]
    accesses = pattern.accesses
    n_args = (len(accesses) + 1) * nb_var
    for i in itertools.product(*ranges):
        args: List[float] = []
        for offset, tag in accesses:
            src = y if tag == -1 else x
            pos = tuple(ii + oi for ii, oi in zip(i, offset))
            for v in range(nb_var):
                args.append(float(src[(v,) + pos]))
        for v in range(nb_var):
            args.append(float(x[(v,) + i]))
        d, contributions = body(args)
        if len(contributions) == n_args - nb_var:
            contributions = list(contributions) + [0.0] * nb_var
        for v in range(nb_var):
            total = float(b[(v,) + i])
            for a in range(len(accesses) + 1):
                total += contributions[a * nb_var + v]
            y[(v,) + i] = total / d
    return y


def gauss_seidel_sweep_python(
    u: np.ndarray, b: np.ndarray, pattern: StencilPattern, d: float
) -> np.ndarray:
    """Classic single-field Gauss-Seidel: ``u[i] = (b[i] + sum(nbrs))/d``
    truly in place on a rank-k array (no leading variable dimension)."""
    bounds = pattern.interior_bounds(u.shape)
    ranges = [range(lo, hi) for lo, hi in bounds]
    if pattern.sweep == -1:
        ranges = [range(hi - 1, lo - 1, -1) for lo, hi in bounds]
    accesses = pattern.accesses
    for i in itertools.product(*ranges):
        total = b[i]
        for offset, _tag in accesses:
            total += u[tuple(ii + oi for ii, oi in zip(i, offset))]
        u[i] = total / d
    return u


def gauss_seidel_sweep_rows(
    u: np.ndarray, b: np.ndarray, pattern: StencilPattern, d: float
) -> np.ndarray:
    """Row-at-a-time Gauss-Seidel for 2-D patterns.

    For each row ``i`` (lexicographic), accumulate all accesses that do
    not touch the current row's yet-unwritten elements with NumPy row
    slices, then resolve the intra-row recurrence element by element.
    Bit-equivalent ordering to the scalar sweep is *not* guaranteed (the
    U/B terms are grouped); agreement is to rounding. Used as the timed
    scalar baseline.
    """
    if pattern.rank != 2:
        raise ValueError("gauss_seidel_sweep_rows is 2-D only")
    (lo0, hi0), (lo1, hi1) = pattern.interior_bounds(u.shape)
    row_accesses = []  # offsets touching the current row, j-offset only
    other_accesses = []  # offsets resolved with a shifted row slice
    for (o0, o1), _tag in pattern.accesses:
        if o0 == 0 and o1 < 0:
            row_accesses.append(o1)
        else:
            other_accesses.append((o0, o1))
    width = hi1 - lo1
    for i in range(lo0, hi0):
        acc = b[i, lo1:hi1].astype(np.float64, copy=True)
        for o0, o1 in other_accesses:
            acc += u[i + o0, lo1 + o1 : lo1 + o1 + width]
        if not row_accesses:
            u[i, lo1:hi1] = acc / d
            continue
        row = u[i]
        for j in range(lo1, hi1):
            total = acc[j - lo1]
            for o1 in row_accesses:
                total += row[j + o1]
            row[j] = total / d
    return u


def jacobi_sweep(
    u: np.ndarray, b: np.ndarray, pattern: StencilPattern, d: float
) -> np.ndarray:
    """One out-of-place Jacobi sweep (empty L): fully vectorizable."""
    if pattern.l_offsets:
        raise ValueError("jacobi_sweep requires an out-of-place pattern")
    bounds = pattern.interior_bounds(u.shape)
    interior = tuple(slice(lo, hi) for lo, hi in bounds)
    acc = b[interior].astype(np.float64, copy=True)
    for offset, _tag in pattern.accesses:
        shifted = tuple(
            slice(lo + o, hi + o) for (lo, hi), o in zip(bounds, offset)
        )
        acc += u[shifted]
    out = u.copy()
    out[interior] = acc / d
    return out


def iterate(
    sweep: Callable[..., np.ndarray],
    u: np.ndarray,
    b: np.ndarray,
    pattern: StencilPattern,
    d: float,
    iterations: int,
) -> np.ndarray:
    """Apply ``sweep`` repeatedly (each sweep sees the previous result)."""
    for _ in range(iterations):
        u = sweep(u, b, pattern, d)
    return u
