"""Baseline implementations used by the evaluation.

* :mod:`repro.baselines.naive` — the sequential "C" baseline: direct
  lexicographic loops, the denominator of every speedup in Figs. 11/12;
* :mod:`repro.baselines.pluto` — a Pluto-like polyhedral baseline with
  skewed (parallelogram) wavefront tiling, in the two configurations of
  §4.1 (C+Pluto 1 and C+Pluto 2);
* :mod:`repro.baselines.elsa` — an elsA-like hand-optimized LU-SGS solver
  (the industrial comparator of Fig. 15).
"""
