"""The ``arith`` dialect: constants, integer/index and float arithmetic.

Like in MLIR, floating-point operations apply elementwise when their
operands are vectors, which is what lets the vectorization pass reuse the
scalar payload unchanged (§3.5 of the paper).
"""

from __future__ import annotations

from typing import Union

from repro.ir.attributes import Attribute, FloatAttr, IntegerAttr, StringAttr
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation, register_op
from repro.ir.types import (
    FloatType,
    IndexType,
    IntegerType,
    Type,
    VectorType,
    f64,
    i1,
    index,
)
from repro.ir.values import Value


def _element_type(t: Type) -> Type:
    return t.element_type if isinstance(t, VectorType) else t


def _is_float_like(t: Type) -> bool:
    return isinstance(_element_type(t), FloatType)


def _is_int_like(t: Type) -> bool:
    return isinstance(_element_type(t), (IntegerType, IndexType))


@register_op
class ConstantOp(Operation):
    """``arith.constant {value = <attr>}``: a compile-time constant."""

    OP_NAME = "arith.constant"

    @classmethod
    def build(cls, builder: OpBuilder, value: Attribute) -> "ConstantOp":
        if isinstance(value, IntegerAttr):
            result_type = value.type
        elif isinstance(value, FloatAttr):
            result_type = value.type
        else:
            raise TypeError(f"unsupported constant attribute {value!r}")
        op = builder.create(cls.OP_NAME, [], [result_type], {"value": value})
        return op  # type: ignore[return-value]

    @property
    def value(self) -> Union[int, float]:
        attr = self.attributes["value"]
        return attr.value  # type: ignore[union-attr]

    def verify_(self) -> None:
        attr = self.attributes.get("value")
        if not isinstance(attr, (IntegerAttr, FloatAttr)):
            raise ValueError("arith.constant needs an integer or float 'value'")
        if self.result().type != attr.type:
            raise ValueError("arith.constant result type must match its value")


def const_f64(builder: OpBuilder, value: float) -> Value:
    """Shorthand: build an f64 constant and return its result value."""
    return ConstantOp.build(builder, FloatAttr(float(value), f64)).result()


def const_index(builder: OpBuilder, value: int) -> Value:
    """Shorthand: build an index constant and return its result value."""
    return ConstantOp.build(builder, IntegerAttr(int(value), index)).result()


class _BinaryOp(Operation):
    """Shared implementation of same-type binary operations."""

    REQUIRES: str = "any"  # "float", "int" or "any"

    @classmethod
    def build(cls, builder: OpBuilder, lhs: Value, rhs: Value) -> "_BinaryOp":
        return builder.create(cls.OP_NAME, [lhs, rhs], [lhs.type])  # type: ignore[return-value]

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def verify_(self) -> None:
        if self.num_operands != 2 or self.num_results != 1:
            raise ValueError(f"{self.name} must have 2 operands and 1 result")
        lhs, rhs = self.operand(0), self.operand(1)
        if lhs.type != rhs.type or self.result().type != lhs.type:
            raise ValueError(
                f"{self.name}: operand/result types disagree "
                f"({lhs.type}, {rhs.type}) -> {self.result().type}"
            )
        if self.REQUIRES == "float" and not _is_float_like(lhs.type):
            raise ValueError(f"{self.name} requires float operands, got {lhs.type}")
        if self.REQUIRES == "int" and not _is_int_like(lhs.type):
            raise ValueError(f"{self.name} requires integer operands, got {lhs.type}")


@register_op
class AddFOp(_BinaryOp):
    OP_NAME = "arith.addf"
    REQUIRES = "float"


@register_op
class SubFOp(_BinaryOp):
    OP_NAME = "arith.subf"
    REQUIRES = "float"


@register_op
class MulFOp(_BinaryOp):
    OP_NAME = "arith.mulf"
    REQUIRES = "float"


@register_op
class DivFOp(_BinaryOp):
    OP_NAME = "arith.divf"
    REQUIRES = "float"


@register_op
class MaximumFOp(_BinaryOp):
    OP_NAME = "arith.maximumf"
    REQUIRES = "float"


@register_op
class MinimumFOp(_BinaryOp):
    OP_NAME = "arith.minimumf"
    REQUIRES = "float"


@register_op
class AddIOp(_BinaryOp):
    OP_NAME = "arith.addi"
    REQUIRES = "int"


@register_op
class SubIOp(_BinaryOp):
    OP_NAME = "arith.subi"
    REQUIRES = "int"


@register_op
class MulIOp(_BinaryOp):
    OP_NAME = "arith.muli"
    REQUIRES = "int"


@register_op
class FloorDivIOp(_BinaryOp):
    """Floored division; used for VF-divisibility bounds (§3.5)."""

    OP_NAME = "arith.floordivi"
    REQUIRES = "int"


@register_op
class RemIOp(_BinaryOp):
    OP_NAME = "arith.remi"
    REQUIRES = "int"


@register_op
class MinSIOp(_BinaryOp):
    """Signed minimum; clamps partial-tile sizes at domain boundaries."""

    OP_NAME = "arith.minsi"
    REQUIRES = "int"


@register_op
class MaxSIOp(_BinaryOp):
    OP_NAME = "arith.maxsi"
    REQUIRES = "int"


@register_op
class NegFOp(Operation):
    OP_NAME = "arith.negf"

    @classmethod
    def build(cls, builder: OpBuilder, value: Value) -> "NegFOp":
        return builder.create(cls.OP_NAME, [value], [value.type])  # type: ignore[return-value]

    def verify_(self) -> None:
        if self.num_operands != 1 or self.num_results != 1:
            raise ValueError("arith.negf must have 1 operand and 1 result")
        if not _is_float_like(self.operand(0).type):
            raise ValueError("arith.negf requires a float operand")


#: Comparison predicates accepted by CmpFOp / CmpIOp.
CMP_PREDICATES = ("eq", "ne", "lt", "le", "gt", "ge")


class _CmpOp(Operation):
    @classmethod
    def build(cls, builder: OpBuilder, predicate: str, lhs: Value, rhs: Value):
        if predicate not in CMP_PREDICATES:
            raise ValueError(f"unknown comparison predicate {predicate!r}")
        return builder.create(
            cls.OP_NAME, [lhs, rhs], [i1], {"predicate": StringAttr(predicate)}
        )

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].value  # type: ignore[union-attr]

    def verify_(self) -> None:
        pred = self.attributes.get("predicate")
        if not isinstance(pred, StringAttr) or pred.value not in CMP_PREDICATES:
            raise ValueError(f"{self.name}: bad or missing predicate")
        if self.operand(0).type != self.operand(1).type:
            raise ValueError(f"{self.name}: operand types disagree")
        if self.result().type != i1:
            raise ValueError(f"{self.name}: result must be i1")


@register_op
class CmpFOp(_CmpOp):
    OP_NAME = "arith.cmpf"


@register_op
class CmpIOp(_CmpOp):
    OP_NAME = "arith.cmpi"


@register_op
class SelectOp(Operation):
    """``arith.select(cond, a, b)``: ternary select."""

    OP_NAME = "arith.select"

    @classmethod
    def build(
        cls, builder: OpBuilder, cond: Value, true_value: Value, false_value: Value
    ) -> "SelectOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [cond, true_value, false_value], [true_value.type]
        )

    def verify_(self) -> None:
        if self.num_operands != 3:
            raise ValueError("arith.select needs 3 operands")
        if self.operand(0).type != i1:
            raise ValueError("arith.select condition must be i1")
        if self.operand(1).type != self.operand(2).type:
            raise ValueError("arith.select branch types disagree")
        if self.result().type != self.operand(1).type:
            raise ValueError("arith.select result type mismatch")


@register_op
class IndexCastOp(Operation):
    """Cast between index and fixed-width integers (schedule bookkeeping)."""

    OP_NAME = "arith.index_cast"

    @classmethod
    def build(cls, builder: OpBuilder, value: Value, result_type: Type):
        return builder.create(cls.OP_NAME, [value], [result_type])

    def verify_(self) -> None:
        src, dst = self.operand(0).type, self.result().type
        if not (_is_int_like(src) and _is_int_like(dst)):
            raise ValueError("arith.index_cast operates on integer-like types")


@register_op
class SIToFPOp(Operation):
    """Signed integer (or index) to floating point conversion."""

    OP_NAME = "arith.sitofp"

    @classmethod
    def build(cls, builder: OpBuilder, value: Value, result_type: Type = f64):
        return builder.create(cls.OP_NAME, [value], [result_type])

    def verify_(self) -> None:
        if not _is_int_like(self.operand(0).type):
            raise ValueError("arith.sitofp source must be integer-like")
        if not _is_float_like(self.result().type):
            raise ValueError("arith.sitofp result must be float-like")


# Builder-style free functions: the fluent API used by the passes.
def addf(b: OpBuilder, x: Value, y: Value) -> Value:
    return AddFOp.build(b, x, y).result()


def subf(b: OpBuilder, x: Value, y: Value) -> Value:
    return SubFOp.build(b, x, y).result()


def mulf(b: OpBuilder, x: Value, y: Value) -> Value:
    return MulFOp.build(b, x, y).result()


def divf(b: OpBuilder, x: Value, y: Value) -> Value:
    return DivFOp.build(b, x, y).result()


def negf(b: OpBuilder, x: Value) -> Value:
    return NegFOp.build(b, x).result()


def addi(b: OpBuilder, x: Value, y: Value) -> Value:
    return AddIOp.build(b, x, y).result()


def subi(b: OpBuilder, x: Value, y: Value) -> Value:
    return SubIOp.build(b, x, y).result()


def muli(b: OpBuilder, x: Value, y: Value) -> Value:
    return MulIOp.build(b, x, y).result()


def floordivi(b: OpBuilder, x: Value, y: Value) -> Value:
    return FloorDivIOp.build(b, x, y).result()


def minsi(b: OpBuilder, x: Value, y: Value) -> Value:
    return MinSIOp.build(b, x, y).result()


def maxsi(b: OpBuilder, x: Value, y: Value) -> Value:
    return MaxSIOp.build(b, x, y).result()
