"""IR dialects.

Mirrors the MLIR dialects the paper builds on, plus its new ``cfd``
dialect:

* :mod:`repro.dialects.arith` — integer/float/index arithmetic;
* :mod:`repro.dialects.math` — libm-style math (sqrt, fma, ...);
* :mod:`repro.dialects.func` — functions, calls, returns;
* :mod:`repro.dialects.scf` — structured control flow (for/if/parallel);
* :mod:`repro.dialects.tensor` — immutable multi-dimensional arrays;
* :mod:`repro.dialects.memref` — mutable buffers;
* :mod:`repro.dialects.vector` — VF-sized vector reads/writes and FMAs;
* :mod:`repro.dialects.linalg` — structured pointwise/shifted-access ops;
* :mod:`repro.dialects.cfd` — the paper's contribution: ``stencilOp``,
  ``faceIteratorOp``, ``tiled_loop`` and ``get_parallel_blocks``.

Importing this package registers every operation with the global
:class:`repro.ir.OpRegistry`.
"""

from repro.dialects import arith, cfd, func, linalg, math, memref, scf, tensor, vector

__all__ = [
    "arith",
    "math",
    "func",
    "scf",
    "tensor",
    "memref",
    "vector",
    "linalg",
    "cfd",
]
