"""A structured-operations dialect modeled on ``linalg``.

:class:`GenericOp` is the workhorse for the *out-of-place* parts of a CFD
solver: pointwise updates and shifted-access computations such as the
finite-difference right-hand side of the 3D heat equation (Fig. 9/10).
Each input is read at ``i + offset`` for a constant per-input offset
vector; the iteration domain shrinks so no access leaves the tensors.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ir.attributes import ArrayAttr, IntegerAttr, index_array_attr
from repro.ir.block import Block, Region
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation, register_op
from repro.ir.types import TensorType, f64
from repro.ir.values import Value


@register_op
class LinalgYieldOp(Operation):
    OP_NAME = "linalg.yield"

    @classmethod
    def build(cls, builder: OpBuilder, values: Sequence[Value]) -> "LinalgYieldOp":
        return builder.create(cls.OP_NAME, list(values))  # type: ignore[return-value]


@register_op
class GenericOp(Operation):
    """``linalg.generic ins(...) outs(init)`` with constant access offsets.

    Semantics: with per-input offsets ``off_j`` and output init ``O``::

        lo[d] = max(0, -min_j off_j[d]);  hi[d] = N[d] - max(0, off_j[d])
        result[i] = body(in_1[i+off_1], ..., in_n[i+off_n], O[i])
                    for i in [lo, hi), else O[i]

    The same tensor may appear several times in ``ins`` with different
    offsets (the 7-point laplacian reads T seven times). All operands
    must share the output's shape.
    """

    OP_NAME = "linalg.generic"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        ins: Sequence[Value],
        out_init: Value,
        offsets: Sequence[Sequence[int]] = None,
        margins: Sequence[Tuple[int, int]] = None,
    ) -> "GenericOp":
        ins = list(ins)
        rank = out_init.type.rank  # type: ignore[union-attr]
        if offsets is None:
            offsets = [[0] * rank for _ in ins]
        if margins is None:
            margins = [(0, 0)] * rank
        offsets_attr = ArrayAttr(
            [index_array_attr(list(o)) for o in offsets]
        )
        margins_attr = ArrayAttr(
            [index_array_attr([lo, hi]) for lo, hi in margins]
        )
        region = Region([Block(arg_types=[f64] * (len(ins) + 1))])
        op = builder.create(
            cls.OP_NAME,
            ins + [out_init],
            [out_init.type],
            {
                "offsets": offsets_attr,
                "margins": margins_attr,
                "num_ins": IntegerAttr(len(ins)),
            },
            regions=[region],
        )
        return op  # type: ignore[return-value]

    @property
    def num_ins(self) -> int:
        return self.attributes["num_ins"].value  # type: ignore[union-attr]

    @property
    def ins(self) -> List[Value]:
        return self.operands[: self.num_ins]

    @property
    def out_init(self) -> Value:
        return self.operand(self.num_ins)

    @property
    def offsets(self) -> List[Tuple[int, ...]]:
        attr: ArrayAttr = self.attributes["offsets"]  # type: ignore[assignment]
        return [tuple(e.value for e in inner) for inner in attr]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def margins(self) -> List[Tuple[int, int]]:
        """Extra per-dimension ``(lo, hi)`` insets of the iteration domain
        (the PolyBench kernels iterate ``1 .. N-1`` even for pointwise
        updates; margins model that without fake shifted accesses)."""
        attr = self.attributes.get("margins")
        if not isinstance(attr, ArrayAttr):
            out_t = self.operand(self.num_ins).type
            return [(0, 0)] * out_t.rank
        return [(inner[0].value, inner[1].value) for inner in attr]

    def iteration_bounds(
        self, shape: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """Per-dimension ``[lo, hi)`` so every shifted access is in bounds,
        further inset by the explicit margins."""
        offsets = self.offsets
        margins = self.margins
        bounds = []
        for d, n in enumerate(shape):
            lo = max([0] + [-o[d] for o in offsets])
            hi_margin = max([0] + [o[d] for o in offsets])
            m_lo, m_hi = margins[d]
            bounds.append((max(lo, m_lo), n - max(hi_margin, m_hi)))
        return bounds

    def halo(self) -> List[Tuple[int, int]]:
        """Per-dimension access halo (how far reads reach past a point):
        the window inflation a fused tile-local instance needs."""
        offsets = self.offsets
        out_t = self.operand(self.num_ins).type
        return [
            (
                max([0] + [-o[d] for o in offsets]),
                max([0] + [o[d] for o in offsets]),
            )
            for d in range(out_t.rank)
        ]

    def verify_(self) -> None:
        n = self.num_ins
        if self.num_operands != n + 1:
            raise ValueError("linalg.generic needs num_ins inputs + one init")
        out_t = self.operand(n).type
        if not isinstance(out_t, TensorType):
            raise ValueError("linalg.generic output must be a tensor")
        for i in range(n):
            t = self.operand(i).type
            if not isinstance(t, TensorType) or t.rank != out_t.rank:
                raise ValueError(
                    f"linalg.generic input #{i} must be a tensor of matching rank"
                )
        offsets = self.offsets
        if len(offsets) != n:
            raise ValueError("linalg.generic needs one offset vector per input")
        for o in offsets:
            if len(o) != out_t.rank:
                raise ValueError("linalg.generic offset rank mismatch")
        if self.result().type != out_t:
            raise ValueError("linalg.generic result type must match init")
        body = self.regions[0].entry_block
        if len(body.arguments) != n + 1:
            raise ValueError("linalg.generic body needs one arg per input + init")
        term = body.terminator
        if term is None or term.name != "linalg.yield":
            raise ValueError("linalg.generic body must end with linalg.yield")
        if len(term.operands) != 1:
            raise ValueError("linalg.generic yields exactly one value")


@register_op
class FillOp(Operation):
    """``linalg.fill(scalar, init)``: a tensor filled with one value."""

    OP_NAME = "linalg.fill"

    @classmethod
    def build(cls, builder: OpBuilder, scalar: Value, init: Value) -> "FillOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [scalar, init], [init.type]
        )

    @property
    def scalar(self) -> Value:
        return self.operand(0)

    @property
    def init(self) -> Value:
        return self.operand(1)

    def verify_(self) -> None:
        t = self.operand(1).type
        if not isinstance(t, TensorType):
            raise ValueError("linalg.fill init must be a tensor")
        if self.operand(0).type != t.element_type:
            raise ValueError("linalg.fill scalar must be the element type")
        if self.result().type != t:
            raise ValueError("linalg.fill result must match init")
