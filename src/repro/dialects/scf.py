"""The ``scf`` dialect: structured control flow.

``scf.for`` carries loop state through ``iter_args`` exactly like MLIR
(Fig. 5 of the paper): the body block receives the induction variable plus
the current loop-carried values, and ``scf.yield`` passes the next-iteration
values; the op's results are the final values.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.block import Block, Region
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation, register_op
from repro.ir.types import index
from repro.ir.values import Value


@register_op
class YieldOp(Operation):
    """Terminator of scf regions, forwarding loop-carried values."""

    OP_NAME = "scf.yield"

    @classmethod
    def build(cls, builder: OpBuilder, values: Sequence[Value] = ()) -> "YieldOp":
        return builder.create(cls.OP_NAME, list(values))  # type: ignore[return-value]


@register_op
class ForOp(Operation):
    """``scf.for(lb, ub, step, iter_args...)`` with one body block.

    Body block arguments: ``[induction_var : index, *iter_args]``.
    Results: the values yielded by the final iteration (same types as
    ``iter_args``).
    """

    OP_NAME = "scf.for"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        lower: Value,
        upper: Value,
        step: Value,
        iter_args: Sequence[Value] = (),
    ) -> "ForOp":
        iter_args = list(iter_args)
        region = Region(
            [Block(arg_types=[index] + [v.type for v in iter_args])]
        )
        op = builder.create(
            cls.OP_NAME,
            [lower, upper, step] + iter_args,
            [v.type for v in iter_args],
            regions=[region],
        )
        return op  # type: ignore[return-value]

    @property
    def lower(self) -> Value:
        return self.operand(0)

    @property
    def upper(self) -> Value:
        return self.operand(1)

    @property
    def step(self) -> Value:
        return self.operand(2)

    @property
    def iter_operands(self) -> List[Value]:
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def induction_var(self) -> Value:
        return self.body.arguments[0]

    @property
    def iter_args(self) -> List[Value]:
        return list(self.body.arguments[1:])

    def verify_(self) -> None:
        if self.num_operands < 3:
            raise ValueError("scf.for needs lb, ub, step")
        for i in range(3):
            if self.operand(i).type != index:
                raise ValueError("scf.for bounds/step must be index-typed")
        n_iter = self.num_operands - 3
        if self.num_results != n_iter:
            raise ValueError("scf.for results must match iter_args")
        body = self.regions[0].entry_block
        if len(body.arguments) != 1 + n_iter:
            raise ValueError("scf.for body needs iv + iter_args arguments")
        if body.arguments[0].type != index:
            raise ValueError("scf.for induction variable must be index")
        for arg, op in zip(body.arguments[1:], self.operands[3:]):
            if arg.type != op.type:
                raise ValueError("scf.for iter_arg types do not match operands")
        term = body.terminator
        if term is None or term.name != "scf.yield":
            raise ValueError("scf.for body must end with scf.yield")
        if [o.type for o in term.operands] != [r.type for r in self.results]:
            raise ValueError("scf.yield types do not match scf.for results")


@register_op
class IfOp(Operation):
    """``scf.if(cond)`` with then/else regions, each ending in scf.yield."""

    OP_NAME = "scf.if"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        cond: Value,
        result_types: Sequence = (),
        with_else: bool = True,
    ) -> "IfOp":
        regions = [Region([Block()])]
        if with_else:
            regions.append(Region([Block()]))
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [cond], list(result_types), regions=regions
        )

    @property
    def then_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def else_block(self) -> Block:
        return self.regions[1].entry_block

    def verify_(self) -> None:
        if self.num_operands != 1:
            raise ValueError("scf.if takes exactly one condition")
        if self.num_results and len(self.regions) != 2:
            raise ValueError("scf.if with results needs an else region")
        for region in self.regions:
            term = region.entry_block.terminator
            if term is None or term.name != "scf.yield":
                raise ValueError("scf.if regions must end with scf.yield")
            if [o.type for o in term.operands] != [r.type for r in self.results]:
                raise ValueError("scf.if yield types do not match results")


@register_op
class ParallelOp(Operation):
    """``scf.parallel``: a loop nest whose iterations are independent.

    Operands: ``lbs + ubs + steps`` (rank inferred as len/3). Appears only
    after bufferization — it has no results; the body writes to memrefs.
    The body block receives one index per dimension.
    """

    OP_NAME = "scf.parallel"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        lowers: Sequence[Value],
        uppers: Sequence[Value],
        steps: Sequence[Value],
    ) -> "ParallelOp":
        rank = len(lowers)
        if len(uppers) != rank or len(steps) != rank:
            raise ValueError("scf.parallel bounds/steps rank mismatch")
        region = Region([Block(arg_types=[index] * rank)])
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME,
            list(lowers) + list(uppers) + list(steps),
            regions=[region],
        )

    @property
    def rank(self) -> int:
        return self.num_operands // 3

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def induction_vars(self) -> List[Value]:
        return list(self.body.arguments)

    def verify_(self) -> None:
        if self.num_operands % 3 != 0 or self.num_operands == 0:
            raise ValueError("scf.parallel needs 3*rank operands")
        if self.num_results:
            raise ValueError("scf.parallel produces no results")
        rank = self.num_operands // 3
        if len(self.regions[0].entry_block.arguments) != rank:
            raise ValueError("scf.parallel body arguments must match rank")


def build_loop_nest(
    builder: OpBuilder,
    lowers: Sequence[Value],
    uppers: Sequence[Value],
    steps: Sequence[Value],
    iter_args: Sequence[Value] = (),
):
    """Build a perfect nest of ``scf.for`` loops threading ``iter_args``.

    Returns ``(outermost_op, innermost_body_builder, ivs, innermost_iter_args)``
    where the caller must emit the innermost body and then
    ``scf.yield`` through each level (the nest is pre-wired: each inner
    loop's results are yielded by its parent).
    """
    ivs: List[Value] = []
    outer_op = None
    current_args = list(iter_args)
    current_builder = builder
    loops: List[ForOp] = []
    for lb, ub, st in zip(lowers, uppers, steps):
        loop = ForOp.build(current_builder, lb, ub, st, current_args)
        if outer_op is None:
            outer_op = loop
        loops.append(loop)
        ivs.append(loop.induction_var)
        current_args = loop.iter_args
        current_builder = OpBuilder.at_end(loop.body)
    # Pre-wire the yields: each loop yields its child's results.
    for parent, child in zip(loops, loops[1:]):
        YieldOp.build(OpBuilder.at_end(parent.body), list(child.results))
    return outer_op, current_builder, ivs, current_args
