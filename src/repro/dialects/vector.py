"""The ``vector`` dialect: VF-sized vector transfers and arithmetic.

``vector.transfer_read``/``transfer_write`` move VF contiguous elements
between a (mem)ref/tensor and a 1-D vector along the innermost dimension;
they are the mid-level abstractions the paper's partial vectorization emits
(§3.5, Fig. 7). Elementwise arithmetic on vectors is provided by the
``arith`` ops themselves, which are type-polymorphic.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.attributes import IntegerAttr
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation, register_op
from repro.ir.types import MemRefType, TensorType, VectorType
from repro.ir.values import Value


def _shaped(t) -> bool:
    return isinstance(t, (TensorType, MemRefType))


@register_op
class TransferReadOp(Operation):
    """``vector.transfer_read(source, indices...)``: read a contiguous
    1-D vector starting at ``indices`` along the last dimension."""

    OP_NAME = "vector.transfer_read"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        source: Value,
        indices: Sequence[Value],
        vector_type: VectorType,
    ) -> "TransferReadOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [source] + list(indices), [vector_type]
        )

    @property
    def source(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    @property
    def vector_length(self) -> int:
        return self.result().type.shape[0]  # type: ignore[union-attr]

    def verify_(self) -> None:
        t = self.operand(0).type
        if not _shaped(t):
            raise ValueError("vector.transfer_read source must be shaped")
        if self.num_operands - 1 != t.rank:
            raise ValueError("vector.transfer_read index count must equal rank")
        vt = self.result().type
        if not isinstance(vt, VectorType) or vt.rank != 1:
            raise ValueError("vector.transfer_read produces a 1-D vector")
        if vt.element_type != t.element_type:
            raise ValueError("vector.transfer_read element type mismatch")


@register_op
class TransferWriteOp(Operation):
    """``vector.transfer_write(vector, dest, indices...)``.

    Writing to a tensor yields the updated tensor; writing to a memref
    yields nothing (the buffer mutates).
    """

    OP_NAME = "vector.transfer_write"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        vector: Value,
        dest: Value,
        indices: Sequence[Value],
    ) -> "TransferWriteOp":
        results = [dest.type] if isinstance(dest.type, TensorType) else []
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [vector, dest] + list(indices), results
        )

    @property
    def vector(self) -> Value:
        return self.operand(0)

    @property
    def dest(self) -> Value:
        return self.operand(1)

    @property
    def indices(self) -> List[Value]:
        return self.operands[2:]

    def verify_(self) -> None:
        vt = self.operand(0).type
        t = self.operand(1).type
        if not isinstance(vt, VectorType) or vt.rank != 1:
            raise ValueError("vector.transfer_write writes a 1-D vector")
        if not _shaped(t):
            raise ValueError("vector.transfer_write destination must be shaped")
        if self.num_operands - 2 != t.rank:
            raise ValueError("vector.transfer_write index count must equal rank")
        if isinstance(t, TensorType):
            if self.num_results != 1 or self.result().type != t:
                raise ValueError(
                    "vector.transfer_write to a tensor must return the tensor"
                )
        elif self.num_results:
            raise ValueError("vector.transfer_write to a memref has no result")


@register_op
class BroadcastOp(Operation):
    """``vector.broadcast(scalar)``: splat a scalar into a vector."""

    OP_NAME = "vector.broadcast"

    @classmethod
    def build(
        cls, builder: OpBuilder, scalar: Value, vector_type: VectorType
    ) -> "BroadcastOp":
        return builder.create(cls.OP_NAME, [scalar], [vector_type])  # type: ignore[return-value]

    def verify_(self) -> None:
        vt = self.result().type
        if not isinstance(vt, VectorType):
            raise ValueError("vector.broadcast produces a vector")
        if self.operand(0).type != vt.element_type:
            raise ValueError("vector.broadcast scalar type mismatch")


@register_op
class VectorExtractOp(Operation):
    """``vector.extract {position}``: one scalar lane of a vector.

    The unrolled scalar part of the partial vectorization (Fig. 7) reads
    individual lanes of the vectorized ``temp`` with this op.
    """

    OP_NAME = "vector.extract"

    @classmethod
    def build(cls, builder: OpBuilder, vector: Value, position: int):
        elem = vector.type.element_type  # type: ignore[union-attr]
        return builder.create(
            cls.OP_NAME, [vector], [elem], {"position": IntegerAttr(position)}
        )

    @property
    def position(self) -> int:
        return self.attributes["position"].value  # type: ignore[union-attr]

    def verify_(self) -> None:
        vt = self.operand(0).type
        if not isinstance(vt, VectorType) or vt.rank != 1:
            raise ValueError("vector.extract operates on 1-D vectors")
        pos = self.attributes.get("position")
        if not isinstance(pos, IntegerAttr) or not (0 <= pos.value < vt.shape[0]):
            raise ValueError("vector.extract position out of range")
        if self.result().type != vt.element_type:
            raise ValueError("vector.extract result must be the element type")


@register_op
class VectorFMAOp(Operation):
    """``vector.fma(a, b, c) = a*b + c`` elementwise on vectors."""

    OP_NAME = "vector.fma"

    @classmethod
    def build(cls, builder: OpBuilder, a: Value, b: Value, c: Value):
        return builder.create(cls.OP_NAME, [a, b, c], [a.type])

    def verify_(self) -> None:
        t = self.operand(0).type
        if not isinstance(t, VectorType):
            raise ValueError("vector.fma operates on vectors")
        for i in (1, 2):
            if self.operand(i).type != t:
                raise ValueError("vector.fma operand types disagree")
        if self.result().type != t:
            raise ValueError("vector.fma result type mismatch")
