"""The ``func`` dialect: functions, returns and direct calls."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ir.attributes import StringAttr, TypeAttr
from repro.ir.block import Block, Region
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation, register_op
from repro.ir.types import FunctionType, Type
from repro.ir.values import Value


@register_op
class FuncOp(Operation):
    """``func.func {sym_name, function_type} { body }``."""

    OP_NAME = "func.func"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        name: str,
        function_type: FunctionType,
    ) -> "FuncOp":
        region = Region([Block(arg_types=function_type.inputs)])
        op = builder.create(
            cls.OP_NAME,
            attributes={
                "sym_name": StringAttr(name),
                "function_type": TypeAttr(function_type),
            },
            regions=[region],
        )
        return op  # type: ignore[return-value]

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value  # type: ignore[union-attr]

    @property
    def function_type(self) -> FunctionType:
        return self.attributes["function_type"].type  # type: ignore[union-attr]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def arguments(self) -> List[Value]:
        return list(self.body.arguments)

    def verify_(self) -> None:
        if not isinstance(self.attributes.get("sym_name"), StringAttr):
            raise ValueError("func.func needs a sym_name")
        ft_attr = self.attributes.get("function_type")
        if not isinstance(ft_attr, TypeAttr) or not isinstance(
            ft_attr.type, FunctionType
        ):
            raise ValueError("func.func needs a function_type")
        ft = ft_attr.type
        args = self.regions[0].entry_block.arguments
        if tuple(a.type for a in args) != ft.inputs:
            raise ValueError(
                "func.func entry-block arguments do not match the signature"
            )
        term = self.regions[0].entry_block.terminator
        if term is not None and term.name == "func.return":
            if tuple(o.type for o in term.operands) != ft.results:
                raise ValueError("func.return types do not match the signature")


@register_op
class ReturnOp(Operation):
    OP_NAME = "func.return"

    @classmethod
    def build(cls, builder: OpBuilder, values: Sequence[Value] = ()) -> "ReturnOp":
        return builder.create(cls.OP_NAME, list(values))  # type: ignore[return-value]


@register_op
class CallOp(Operation):
    """``func.call {callee}``: direct call to a symbol in the module."""

    OP_NAME = "func.call"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        callee: str,
        operands: Sequence[Value],
        result_types: Sequence[Type],
    ) -> "CallOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME,
            list(operands),
            list(result_types),
            {"callee": StringAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.attributes["callee"].value  # type: ignore[union-attr]

    def resolve(self, module: ModuleOp) -> Optional[FuncOp]:
        target = module.lookup_symbol(self.callee)
        return target if isinstance(target, FuncOp) else None

    def verify_(self) -> None:
        if not isinstance(self.attributes.get("callee"), StringAttr):
            raise ValueError("func.call needs a callee")
