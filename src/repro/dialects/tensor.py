"""The ``tensor`` dialect: immutable multi-dimensional arrays.

Tensors are SSA values; ``insert``/``insert_slice`` return *new* tensors,
which is what lets loop-carried stencil updates thread a tensor through
``scf.for`` iter_args (Fig. 5). ``extract_slice``/``insert_slice`` carve
hyperrectangular tiles (Fig. 6).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.attributes import IntegerAttr
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation, register_op
from repro.ir.types import DYNAMIC, TensorType, Type, index
from repro.ir.values import Value


@register_op
class EmptyOp(Operation):
    """``tensor.empty``: an uninitialized tensor of the given type.

    Dynamic dimensions are provided as index operands, in dimension order.
    """

    OP_NAME = "tensor.empty"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        result_type: TensorType,
        dynamic_sizes: Sequence[Value] = (),
    ) -> "EmptyOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, list(dynamic_sizes), [result_type]
        )

    def verify_(self) -> None:
        t = self.result().type
        if not isinstance(t, TensorType):
            raise ValueError("tensor.empty must produce a tensor")
        n_dynamic = sum(1 for d in t.shape if d == DYNAMIC)
        if self.num_operands != n_dynamic:
            raise ValueError(
                f"tensor.empty: {self.num_operands} dynamic sizes for "
                f"{n_dynamic} dynamic dimensions"
            )


@register_op
class DimOp(Operation):
    """``tensor.dim {dim}``: the size of one dimension, as an index."""

    OP_NAME = "tensor.dim"

    @classmethod
    def build(cls, builder: OpBuilder, source: Value, dim: int) -> "DimOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [source], [index], {"dim": IntegerAttr(dim, index)}
        )

    @property
    def dim(self) -> int:
        return self.attributes["dim"].value  # type: ignore[union-attr]

    def verify_(self) -> None:
        t = self.operand(0).type
        if not isinstance(t, TensorType):
            raise ValueError("tensor.dim source must be a tensor")
        d = self.attributes.get("dim")
        if not isinstance(d, IntegerAttr) or not (0 <= d.value < t.rank):
            raise ValueError("tensor.dim: dimension out of range")


@register_op
class ExtractOp(Operation):
    """``tensor.extract(source, indices...)``: read one element."""

    OP_NAME = "tensor.extract"

    @classmethod
    def build(
        cls, builder: OpBuilder, source: Value, indices: Sequence[Value]
    ) -> "ExtractOp":
        elem = source.type.element_type  # type: ignore[union-attr]
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [source] + list(indices), [elem]
        )

    @property
    def source(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    def verify_(self) -> None:
        t = self.operand(0).type
        if not isinstance(t, TensorType):
            raise ValueError("tensor.extract source must be a tensor")
        if self.num_operands - 1 != t.rank:
            raise ValueError("tensor.extract index count must equal rank")
        if self.result().type != t.element_type:
            raise ValueError("tensor.extract result must be the element type")


@register_op
class InsertOp(Operation):
    """``tensor.insert(scalar, dest, indices...)``: a new tensor with one
    element replaced."""

    OP_NAME = "tensor.insert"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        scalar: Value,
        dest: Value,
        indices: Sequence[Value],
    ) -> "InsertOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [scalar, dest] + list(indices), [dest.type]
        )

    @property
    def scalar(self) -> Value:
        return self.operand(0)

    @property
    def dest(self) -> Value:
        return self.operand(1)

    @property
    def indices(self) -> List[Value]:
        return self.operands[2:]

    def verify_(self) -> None:
        t = self.operand(1).type
        if not isinstance(t, TensorType):
            raise ValueError("tensor.insert destination must be a tensor")
        if self.operand(0).type != t.element_type:
            raise ValueError("tensor.insert scalar must be the element type")
        if self.num_operands - 2 != t.rank:
            raise ValueError("tensor.insert index count must equal rank")
        if self.result().type != t:
            raise ValueError("tensor.insert result type must match destination")


class _SliceOpBase(Operation):
    """Shared offset/size accessors for extract_slice/insert_slice.

    Offsets and sizes are index operands (rank each); strides are fixed to
    1, which is all the tiling in the paper requires.
    """

    _N_LEAD = 1  # number of leading non-index operands

    @property
    def rank(self) -> int:
        return (self.num_operands - self._N_LEAD) // 2

    @property
    def offsets(self) -> List[Value]:
        return self.operands[self._N_LEAD : self._N_LEAD + self.rank]

    @property
    def sizes(self) -> List[Value]:
        return self.operands[self._N_LEAD + self.rank :]


@register_op
class ExtractSliceOp(_SliceOpBase):
    """``tensor.extract_slice(source, offsets..., sizes...)``: a data tile."""

    OP_NAME = "tensor.extract_slice"
    _N_LEAD = 1

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        source: Value,
        offsets: Sequence[Value],
        sizes: Sequence[Value],
        static_sizes: Sequence[int] = None,
    ) -> "ExtractSliceOp":
        src_t: TensorType = source.type  # type: ignore[assignment]
        if static_sizes is None:
            static_sizes = [DYNAMIC] * src_t.rank
        result_type = TensorType(static_sizes, src_t.element_type)
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME,
            [source] + list(offsets) + list(sizes),
            [result_type],
        )

    @property
    def source(self) -> Value:
        return self.operand(0)

    def verify_(self) -> None:
        t = self.operand(0).type
        if not isinstance(t, TensorType):
            raise ValueError("tensor.extract_slice source must be a tensor")
        if self.num_operands != 1 + 2 * t.rank:
            raise ValueError(
                "tensor.extract_slice needs rank offsets and rank sizes"
            )
        rt = self.result().type
        if not isinstance(rt, TensorType) or rt.rank != t.rank:
            raise ValueError("tensor.extract_slice result rank mismatch")


@register_op
class InsertSliceOp(_SliceOpBase):
    """``tensor.insert_slice(tile, dest, offsets..., sizes...)``."""

    OP_NAME = "tensor.insert_slice"
    _N_LEAD = 2

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        tile: Value,
        dest: Value,
        offsets: Sequence[Value],
        sizes: Sequence[Value],
    ) -> "InsertSliceOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME,
            [tile, dest] + list(offsets) + list(sizes),
            [dest.type],
        )

    @property
    def tile(self) -> Value:
        return self.operand(0)

    @property
    def dest(self) -> Value:
        return self.operand(1)

    def verify_(self) -> None:
        t = self.operand(1).type
        if not isinstance(t, TensorType):
            raise ValueError("tensor.insert_slice destination must be a tensor")
        if self.num_operands != 2 + 2 * t.rank:
            raise ValueError(
                "tensor.insert_slice needs rank offsets and rank sizes"
            )
        if self.result().type != t:
            raise ValueError("tensor.insert_slice result must match destination")


def empty_like(builder: OpBuilder, value: Value) -> Value:
    """A fresh uninitialized tensor with the shape of ``value``.

    Dynamic dimensions are taken with ``tensor.dim`` from ``value``.
    """
    t: TensorType = value.type  # type: ignore[assignment]
    dynamic_sizes = [
        DimOp.build(builder, value, i).result()
        for i in range(t.rank)
        if t.is_dynamic_dim(i)
    ]
    return EmptyOp.build(builder, t, dynamic_sizes).result()
