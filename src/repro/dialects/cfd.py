"""The ``cfd`` dialect — the paper's new operations (§3.2–3.4).

* :class:`StencilOp` — one iteration of an in-place stencil (Eq. 2);
* :class:`FaceIteratorOp` — finite-volume flux accumulation over faces;
* :class:`TiledLoopOp` — explicit-operand tiled loop nest with optional
  groups of parallel iterations;
* :class:`GetParallelBlocksOp` — wavefront schedule of sub-domains in CSR
  form;
* :class:`CFDYieldOp` — region terminator.

Semantics of ``cfd.stencilOp`` (the contract every backend implements):

Let ``X`` (previous iterate), ``B`` (right-hand side) and ``Y`` (output,
initialized from the ``outs`` operand) be tensors of shape
``(nv, n_1, ..., n_k)`` and let the pattern define accesses
``(r_1, tag_1), ..., (r_m, tag_m)`` in row-major pattern order
(tag -1 = read Y, tag 1 = read X). For every interior cell ``i`` visited
in (sweep-directed) lexicographic order, the region is invoked with block
arguments::

    w[a*nv + v] = Y[v, i + r_a]  if tag_a == -1 else X[v, i + r_a]
    w[m*nv + v] = X[v, i]        (the center element)

and must yield ``1 + (m+1)*nv`` values: ``d`` followed by per-access,
per-variable contributions ``c[a, v]`` (center contributions last). The
update then is::

    Y[v, i] = (B[v, i] + sum_a c[a, v]) / d

Boundary cells keep their initial value (the degenerate variant of Eq. 2
is the identity in this reproduction; boundary conditions are applied by
the surrounding solver).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.stencil import StencilPattern
from repro.ir.attributes import (
    BoolAttr,
    DenseIntElementsAttr,
    IntegerAttr,
)
from repro.ir.block import Block, Region
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation, register_op
from repro.ir.types import TensorType, f64, index
from repro.ir.values import Value


@register_op
class CFDYieldOp(Operation):
    """Terminator of cfd regions."""

    OP_NAME = "cfd.yield"

    @classmethod
    def build(cls, builder: OpBuilder, values: Sequence[Value] = ()) -> "CFDYieldOp":
        return builder.create(cls.OP_NAME, list(values))  # type: ignore[return-value]


@register_op
class StencilOp(Operation):
    """``cfd.stencilOp ins(X, B) outs(Y)`` — see the module docstring.

    Optional *write bounds*: ``2k`` extra index operands
    ``(lo_1..lo_k, hi_1..hi_k)`` restricting the updated cells to
    ``[lo, hi)`` in the operand tensors' (local) coordinates. Tiling
    produces such bounded instances so a tile updates exactly its core
    while reading into its halo. Without bounds, the write region is the
    pattern-derived interior of the tensor shape.
    """

    OP_NAME = "cfd.stencilOp"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        x: Value,
        b: Value,
        y_init: Value,
        pattern: StencilPattern,
        nb_var: int = 1,
        bounds: Optional[Sequence[Value]] = None,
    ) -> "StencilOp":
        n_args = (pattern.num_accesses + 1) * nb_var
        region = Region([Block(arg_types=[f64] * n_args)])
        operands = [x, b, y_init]
        has_bounds = bounds is not None
        if has_bounds:
            if len(bounds) != 2 * pattern.rank:
                raise ValueError(
                    f"bounds must hold 2*rank = {2 * pattern.rank} values"
                )
            operands += list(bounds)
        op = builder.create(
            cls.OP_NAME,
            operands,
            [y_init.type],
            {
                "stencil": DenseIntElementsAttr(pattern.to_nested_lists()),
                "nbVar": IntegerAttr(nb_var),
                "sweep": IntegerAttr(pattern.sweep),
                "has_bounds": BoolAttr(has_bounds),
                "allow_initial_reads": BoolAttr(pattern.allow_initial_reads),
            },
            regions=[region],
        )
        return op  # type: ignore[return-value]

    @property
    def has_bounds(self) -> bool:
        attr = self.attributes.get("has_bounds")
        return bool(attr.value) if isinstance(attr, BoolAttr) else False

    @property
    def bounds_lo(self) -> List[Value]:
        if not self.has_bounds:
            return []
        k = self.space_rank
        return self.operands[3 : 3 + k]

    @property
    def bounds_hi(self) -> List[Value]:
        if not self.has_bounds:
            return []
        k = self.space_rank
        return self.operands[3 + k : 3 + 2 * k]

    # ---- accessors ---------------------------------------------------------

    @property
    def x(self) -> Value:
        return self.operand(0)

    @property
    def b(self) -> Value:
        return self.operand(1)

    @property
    def y_init(self) -> Value:
        return self.operand(2)

    @property
    def nb_var(self) -> int:
        return self.attributes["nbVar"].value  # type: ignore[union-attr]

    @property
    def sweep(self) -> int:
        attr = self.attributes.get("sweep")
        return attr.value if isinstance(attr, IntegerAttr) else 1

    @property
    def pattern(self) -> StencilPattern:
        stencil = self.attributes["stencil"]
        initial = self.attributes.get("allow_initial_reads")
        return StencilPattern(
            stencil.to_nested_lists(),  # type: ignore[union-attr]
            sweep=self.sweep,
            allow_initial_reads=bool(initial.value)
            if isinstance(initial, BoolAttr)
            else False,
        )

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def space_rank(self) -> int:
        return self.pattern.rank

    def verify_(self) -> None:
        stencil_attr = self.attributes.get("stencil")
        rank = len(stencil_attr.shape) if isinstance(
            stencil_attr, DenseIntElementsAttr
        ) else 0
        expected_operands = 3 + (2 * rank if self.has_bounds else 0)
        if self.num_operands != expected_operands or self.num_results != 1:
            raise ValueError(
                "cfd.stencilOp takes (X, B, Y_init [, bounds]) and returns Y"
            )
        if self.has_bounds:
            for v in self.operands[3:]:
                if v.type != index:
                    raise ValueError("cfd.stencilOp bounds must be index-typed")
        stencil = self.attributes.get("stencil")
        if not isinstance(stencil, DenseIntElementsAttr):
            raise ValueError("cfd.stencilOp needs a dense 'stencil' attribute")
        nb_var_attr = self.attributes.get("nbVar")
        if not isinstance(nb_var_attr, IntegerAttr) or nb_var_attr.value < 1:
            raise ValueError("cfd.stencilOp needs a positive 'nbVar'")
        pattern = self.pattern  # validates the L/U lexicographic restriction
        nv = nb_var_attr.value
        for i, operand in enumerate(self.operands[:3]):
            t = operand.type
            if not isinstance(t, TensorType):
                raise ValueError(f"cfd.stencilOp operand #{i} must be a tensor")
            if t.rank != pattern.rank + 1:
                raise ValueError(
                    f"cfd.stencilOp operand #{i} rank {t.rank} != "
                    f"pattern rank + 1 ({pattern.rank + 1})"
                )
            if t.shape[0] not in (nv, -1):
                raise ValueError(
                    f"cfd.stencilOp operand #{i}: leading dim must be nbVar={nv}"
                )
        if self.result().type != self.operand(2).type:
            raise ValueError("cfd.stencilOp result type must match Y_init")
        expected_args = (pattern.num_accesses + 1) * nv
        body = self.regions[0].entry_block
        if len(body.arguments) != expected_args:
            raise ValueError(
                f"cfd.stencilOp body must have {expected_args} arguments "
                f"((accesses + 1) * nbVar), found {len(body.arguments)}"
            )
        term = body.terminator
        if term is None or term.name != "cfd.yield":
            raise ValueError("cfd.stencilOp body must end with cfd.yield")
        expected_yields = 1 + expected_args
        if len(term.operands) != expected_yields:
            raise ValueError(
                f"cfd.stencilOp body must yield {expected_yields} values "
                f"(d + one contribution per argument), found {len(term.operands)}"
            )


@register_op
class FaceIteratorOp(Operation):
    """``cfd.faceIteratorOp ins(X) outs(B) {axis}`` — flux over faces.

    For every pair of cells ``(i, i + e_axis)`` sharing a face, the region
    receives ``2*nv`` arguments (the left then the right cell's fields)
    and yields ``nv`` flux values ``F``. The op accumulates::

        B[v, i]          -= F[v]
        B[v, i + e_axis] += F[v]

    computing each face flux once and distributing it to both adjacent
    cells, exactly the redundancy-avoiding design of §3.2.
    """

    OP_NAME = "cfd.faceIteratorOp"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        x: Value,
        b_init: Value,
        axis: int,
        nb_var: int = 1,
    ) -> "FaceIteratorOp":
        region = Region([Block(arg_types=[f64] * (2 * nb_var))])
        op = builder.create(
            cls.OP_NAME,
            [x, b_init],
            [b_init.type],
            {"axis": IntegerAttr(axis), "nbVar": IntegerAttr(nb_var)},
            regions=[region],
        )
        return op  # type: ignore[return-value]

    @property
    def x(self) -> Value:
        return self.operand(0)

    @property
    def b_init(self) -> Value:
        return self.operand(1)

    @property
    def axis(self) -> int:
        return self.attributes["axis"].value  # type: ignore[union-attr]

    @property
    def nb_var(self) -> int:
        return self.attributes["nbVar"].value  # type: ignore[union-attr]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def verify_(self) -> None:
        if self.num_operands != 2 or self.num_results != 1:
            raise ValueError("cfd.faceIteratorOp takes (X, B_init) -> B")
        nv_attr = self.attributes.get("nbVar")
        axis_attr = self.attributes.get("axis")
        if not isinstance(nv_attr, IntegerAttr) or nv_attr.value < 1:
            raise ValueError("cfd.faceIteratorOp needs a positive 'nbVar'")
        x_t = self.operand(0).type
        if not isinstance(x_t, TensorType):
            raise ValueError("cfd.faceIteratorOp X must be a tensor")
        if not isinstance(axis_attr, IntegerAttr) or not (
            0 <= axis_attr.value < x_t.rank - 1
        ):
            raise ValueError("cfd.faceIteratorOp 'axis' must be a space axis")
        body = self.regions[0].entry_block
        if len(body.arguments) != 2 * nv_attr.value:
            raise ValueError(
                "cfd.faceIteratorOp body needs 2*nbVar arguments"
            )
        term = body.terminator
        if term is None or term.name != "cfd.yield":
            raise ValueError("cfd.faceIteratorOp body must end with cfd.yield")
        if len(term.operands) != nv_attr.value:
            raise ValueError("cfd.faceIteratorOp body must yield nbVar fluxes")


@register_op
class TiledLoopOp(Operation):
    """``cfd.tiled_loop`` — a loop nest with explicit tensor operands.

    Operands (in order): ``lbs (k) + ubs (k) + steps (k) + ins (n) +
    outs (m) [+ group_offsets + group_indices]``; the trailing pair is
    present iff ``has_groups`` is true and encodes, in CSR form, groups of
    loop iterations (linearized grid indices) that may run in parallel,
    with groups executed in order (§3.4).

    The body block receives ``k`` induction variables, then the ``ins``
    then the current ``outs`` values, and terminates with ``cfd.yield``
    of the ``m`` updated outs. Results are the final outs.
    """

    OP_NAME = "cfd.tiled_loop"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        lbs: Sequence[Value],
        ubs: Sequence[Value],
        steps: Sequence[Value],
        ins: Sequence[Value],
        outs: Sequence[Value],
        groups: Optional[Sequence[Value]] = None,
        reverse: bool = False,
    ) -> "TiledLoopOp":
        k = len(lbs)
        if len(ubs) != k or len(steps) != k:
            raise ValueError("cfd.tiled_loop bounds/steps rank mismatch")
        ins, outs = list(ins), list(outs)
        operands = list(lbs) + list(ubs) + list(steps) + ins + outs
        has_groups = groups is not None
        if has_groups:
            if len(groups) != 2:
                raise ValueError("groups must be (offsets, indices)")
            operands += list(groups)
        arg_types = [index] * k + [v.type for v in ins] + [v.type for v in outs]
        region = Region([Block(arg_types=arg_types)])
        op = builder.create(
            cls.OP_NAME,
            operands,
            [v.type for v in outs],
            {
                "rank": IntegerAttr(k),
                "num_ins": IntegerAttr(len(ins)),
                "num_outs": IntegerAttr(len(outs)),
                "has_groups": BoolAttr(has_groups),
                "reverse": BoolAttr(reverse),
            },
            regions=[region],
        )
        return op  # type: ignore[return-value]

    # ---- accessors -----------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.attributes["rank"].value  # type: ignore[union-attr]

    @property
    def num_ins(self) -> int:
        return self.attributes["num_ins"].value  # type: ignore[union-attr]

    @property
    def num_outs(self) -> int:
        return self.attributes["num_outs"].value  # type: ignore[union-attr]

    @property
    def has_groups(self) -> bool:
        attr = self.attributes.get("has_groups")
        return bool(attr.value) if isinstance(attr, BoolAttr) else False

    @property
    def reverse(self) -> bool:
        """Iterate the tile grid in reverse lexicographic order (the
        backward sweep of LU-SGS, §4.3)."""
        attr = self.attributes.get("reverse")
        return bool(attr.value) if isinstance(attr, BoolAttr) else False

    @property
    def lbs(self) -> List[Value]:
        return self.operands[: self.rank]

    @property
    def ubs(self) -> List[Value]:
        return self.operands[self.rank : 2 * self.rank]

    @property
    def steps(self) -> List[Value]:
        return self.operands[2 * self.rank : 3 * self.rank]

    @property
    def ins(self) -> List[Value]:
        start = 3 * self.rank
        return self.operands[start : start + self.num_ins]

    @property
    def outs(self) -> List[Value]:
        start = 3 * self.rank + self.num_ins
        return self.operands[start : start + self.num_outs]

    @property
    def group_operands(self) -> Optional[List[Value]]:
        if not self.has_groups:
            return None
        return self.operands[-2:]

    @property
    def stamped_tile_sizes(self) -> Optional[List[int]]:
        """The ``tile_sizes`` the tiling pass stamped for the static
        analyzer (:mod:`repro.analysis`), or ``None`` when the loop was
        built by hand. The analyzer itself audits the *step operands*
        (what actually executes); this accessor is for introspection."""
        attr = self.attributes.get("tile_sizes")
        if isinstance(attr, DenseIntElementsAttr):
            return [int(v) for v in attr.flat()]
        return None

    @property
    def stamped_stencil(self) -> Optional[DenseIntElementsAttr]:
        """The stencil pattern box stamped by the tiling pass, if any."""
        attr = self.attributes.get("stencil")
        return attr if isinstance(attr, DenseIntElementsAttr) else None

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def induction_vars(self) -> List[Value]:
        return list(self.body.arguments[: self.rank])

    @property
    def in_args(self) -> List[Value]:
        return list(self.body.arguments[self.rank : self.rank + self.num_ins])

    @property
    def out_args(self) -> List[Value]:
        start = self.rank + self.num_ins
        return list(self.body.arguments[start : start + self.num_outs])

    def verify_(self) -> None:
        k, n, m = self.rank, self.num_ins, self.num_outs
        expected = 3 * k + n + m + (2 if self.has_groups else 0)
        if self.num_operands != expected:
            raise ValueError(
                f"cfd.tiled_loop expects {expected} operands, has {self.num_operands}"
            )
        if self.num_results != m:
            raise ValueError("cfd.tiled_loop results must match outs")
        for v in self.operands[: 3 * k]:
            if v.type != index:
                raise ValueError("cfd.tiled_loop bounds/steps must be index")
        body = self.regions[0].entry_block
        if len(body.arguments) != k + n + m:
            raise ValueError("cfd.tiled_loop body needs k + n + m arguments")
        term = body.terminator
        if term is None or term.name != "cfd.yield":
            raise ValueError("cfd.tiled_loop body must end with cfd.yield")
        if len(term.operands) != m:
            raise ValueError("cfd.tiled_loop must yield one value per out")
        for y, r in zip(term.operands, self.results):
            if y.type != r.type:
                raise ValueError("cfd.tiled_loop yield types mismatch results")


@register_op
class GetParallelBlocksOp(Operation):
    """``cfd.get_parallel_blocks {block_stencil}`` — wavefront groups.

    Operands: the number of sub-domains along each tiled dimension.
    Results: ``(offsets, indices)`` — a CSR encoding where row ``g``
    spans ``indices[offsets[g] : offsets[g+1]]`` and lists the linearized
    sub-domain indices of wavefront group ``g``; groups must execute in
    order, sub-domains within a group are independent. The schedule is
    the longest-path optimum of Eq. (3).
    """

    OP_NAME = "cfd.get_parallel_blocks"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        num_blocks: Sequence[Value],
        block_offsets: Sequence[Sequence[int]],
    ) -> "GetParallelBlocksOp":
        rank = len(num_blocks)
        pattern_box = _offsets_to_box(rank, block_offsets)
        result_type = TensorType([-1], index)
        op = builder.create(
            cls.OP_NAME,
            list(num_blocks),
            [result_type, result_type],
            {"block_stencil": DenseIntElementsAttr(pattern_box)},
        )
        return op  # type: ignore[return-value]

    @property
    def block_offsets(self) -> List[tuple]:
        """Decode the block_stencil attribute back to offset tuples."""
        attr: DenseIntElementsAttr = self.attributes["block_stencil"]  # type: ignore[assignment]
        shape = attr.shape
        radii = [s // 2 for s in shape]
        offsets = []
        flat = attr.flat()
        strides = []
        acc = 1
        for s in reversed(shape):
            strides.insert(0, acc)
            acc *= s
        for pos in range(len(flat)):
            if flat[pos] != -1:
                continue
            coords = []
            rem = pos
            for st in strides:
                coords.append(rem // st)
                rem %= st
            offsets.append(tuple(c - r for c, r in zip(coords, radii)))
        return offsets

    def verify_(self) -> None:
        attr = self.attributes.get("block_stencil")
        if not isinstance(attr, DenseIntElementsAttr):
            raise ValueError(
                "cfd.get_parallel_blocks needs a 'block_stencil' attribute"
            )
        if any(v not in (0, -1) for v in attr.flat()):
            raise ValueError("block_stencil entries must be 0 or -1 (§3.4)")
        if self.num_results != 2:
            raise ValueError("cfd.get_parallel_blocks returns (offsets, indices)")
        if self.num_operands != len(attr.shape):
            raise ValueError(
                "cfd.get_parallel_blocks needs one size per tiled dimension"
            )


def _offsets_to_box(rank: int, offsets: Sequence[Sequence[int]]) -> list:
    """Encode block offsets as a centered -1/0 box attribute."""
    offsets = [tuple(o) for o in offsets]
    radius = max([1] + [abs(c) for o in offsets for c in o])
    shape = [2 * radius + 1] * rank

    def build(level: int, prefix: tuple):
        if level == rank:
            offset = tuple(p - radius for p in prefix)
            return -1 if offset in offsets else 0
        return [build(level + 1, prefix + (i,)) for i in range(shape[level])]

    return build(0, ())
