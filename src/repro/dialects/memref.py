"""The ``memref`` dialect: mutable in-memory buffers.

After bufferization replaces tensors with memrefs, the in-place character
of the stencil becomes literal: a single buffer is read and written by the
same loop nest, as in the generated code of Fig. 7.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.attributes import IntegerAttr
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation, register_op
from repro.ir.types import DYNAMIC, MemRefType, index
from repro.ir.values import Value


@register_op
class AllocOp(Operation):
    """``memref.alloc``: allocate a buffer (dynamic sizes as operands)."""

    OP_NAME = "memref.alloc"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        result_type: MemRefType,
        dynamic_sizes: Sequence[Value] = (),
    ) -> "AllocOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, list(dynamic_sizes), [result_type]
        )

    def verify_(self) -> None:
        t = self.result().type
        if not isinstance(t, MemRefType):
            raise ValueError("memref.alloc must produce a memref")
        n_dynamic = sum(1 for d in t.shape if d == DYNAMIC)
        if self.num_operands != n_dynamic:
            raise ValueError("memref.alloc dynamic size count mismatch")


@register_op
class DeallocOp(Operation):
    OP_NAME = "memref.dealloc"

    @classmethod
    def build(cls, builder: OpBuilder, buffer: Value) -> "DeallocOp":
        return builder.create(cls.OP_NAME, [buffer])  # type: ignore[return-value]

    def verify_(self) -> None:
        if not isinstance(self.operand(0).type, MemRefType):
            raise ValueError("memref.dealloc operand must be a memref")


@register_op
class LoadOp(Operation):
    """``memref.load(buffer, indices...)``."""

    OP_NAME = "memref.load"

    @classmethod
    def build(
        cls, builder: OpBuilder, buffer: Value, indices: Sequence[Value]
    ) -> "LoadOp":
        elem = buffer.type.element_type  # type: ignore[union-attr]
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [buffer] + list(indices), [elem]
        )

    @property
    def buffer(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    def verify_(self) -> None:
        t = self.operand(0).type
        if not isinstance(t, MemRefType):
            raise ValueError("memref.load source must be a memref")
        if self.num_operands - 1 != t.rank:
            raise ValueError("memref.load index count must equal rank")


@register_op
class StoreOp(Operation):
    """``memref.store(scalar, buffer, indices...)``."""

    OP_NAME = "memref.store"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        scalar: Value,
        buffer: Value,
        indices: Sequence[Value],
    ) -> "StoreOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [scalar, buffer] + list(indices)
        )

    @property
    def scalar(self) -> Value:
        return self.operand(0)

    @property
    def buffer(self) -> Value:
        return self.operand(1)

    @property
    def indices(self) -> List[Value]:
        return self.operands[2:]

    def verify_(self) -> None:
        t = self.operand(1).type
        if not isinstance(t, MemRefType):
            raise ValueError("memref.store destination must be a memref")
        if self.operand(0).type != t.element_type:
            raise ValueError("memref.store scalar must be the element type")
        if self.num_operands - 2 != t.rank:
            raise ValueError("memref.store index count must equal rank")


@register_op
class SubViewOp(Operation):
    """``memref.subview(source, offsets..., sizes...)``: an aliasing view.

    Strides are fixed to 1. The result aliases the source buffer — writes
    through the view are visible through the source, which is how tiles
    mutate the global solution after bufferization.
    """

    OP_NAME = "memref.subview"

    @classmethod
    def build(
        cls,
        builder: OpBuilder,
        source: Value,
        offsets: Sequence[Value],
        sizes: Sequence[Value],
    ) -> "SubViewOp":
        src_t: MemRefType = source.type  # type: ignore[assignment]
        result_type = MemRefType([DYNAMIC] * src_t.rank, src_t.element_type)
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [source] + list(offsets) + list(sizes), [result_type]
        )

    @property
    def source(self) -> Value:
        return self.operand(0)

    @property
    def rank(self) -> int:
        return (self.num_operands - 1) // 2

    @property
    def offsets(self) -> List[Value]:
        return self.operands[1 : 1 + self.rank]

    @property
    def sizes(self) -> List[Value]:
        return self.operands[1 + self.rank :]

    def verify_(self) -> None:
        t = self.operand(0).type
        if not isinstance(t, MemRefType):
            raise ValueError("memref.subview source must be a memref")
        if self.num_operands != 1 + 2 * t.rank:
            raise ValueError("memref.subview needs rank offsets and rank sizes")


@register_op
class CopyOp(Operation):
    """``memref.copy(source, dest)``: elementwise buffer copy."""

    OP_NAME = "memref.copy"

    @classmethod
    def build(cls, builder: OpBuilder, source: Value, dest: Value) -> "CopyOp":
        return builder.create(cls.OP_NAME, [source, dest])  # type: ignore[return-value]

    def verify_(self) -> None:
        for i in range(2):
            if not isinstance(self.operand(i).type, MemRefType):
                raise ValueError("memref.copy operands must be memrefs")


@register_op
class MemDimOp(Operation):
    """``memref.dim {dim}``: the size of one dimension."""

    OP_NAME = "memref.dim"

    @classmethod
    def build(cls, builder: OpBuilder, source: Value, dim: int) -> "MemDimOp":
        return builder.create(  # type: ignore[return-value]
            cls.OP_NAME, [source], [index], {"dim": IntegerAttr(dim, index)}
        )

    @property
    def dim(self) -> int:
        return self.attributes["dim"].value  # type: ignore[union-attr]

    def verify_(self) -> None:
        t = self.operand(0).type
        if not isinstance(t, MemRefType):
            raise ValueError("memref.dim source must be a memref")
        d = self.attributes.get("dim")
        if not isinstance(d, IntegerAttr) or not (0 <= d.value < t.rank):
            raise ValueError("memref.dim: dimension out of range")
