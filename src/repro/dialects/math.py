"""The ``math`` dialect: libm-style functions and fused multiply-add.

All operations are elementwise over vectors, like their MLIR namesakes.
"""

from __future__ import annotations

from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation, register_op
from repro.ir.types import FloatType, VectorType
from repro.ir.values import Value


def _is_float_like(t) -> bool:
    if isinstance(t, VectorType):
        t = t.element_type
    return isinstance(t, FloatType)


class _UnaryMathOp(Operation):
    @classmethod
    def build(cls, builder: OpBuilder, value: Value):
        return builder.create(cls.OP_NAME, [value], [value.type])

    def verify_(self) -> None:
        if self.num_operands != 1 or self.num_results != 1:
            raise ValueError(f"{self.name}: 1 operand, 1 result required")
        if not _is_float_like(self.operand(0).type):
            raise ValueError(f"{self.name}: float operand required")
        if self.result().type != self.operand(0).type:
            raise ValueError(f"{self.name}: result type must match operand")


@register_op
class SqrtOp(_UnaryMathOp):
    """Square root — the speed of sound in the Roe flux needs it."""

    OP_NAME = "math.sqrt"


@register_op
class AbsFOp(_UnaryMathOp):
    """Absolute value — wave-speed magnitudes in upwind fluxes."""

    OP_NAME = "math.absf"


@register_op
class ExpOp(_UnaryMathOp):
    OP_NAME = "math.exp"


@register_op
class LogOp(_UnaryMathOp):
    OP_NAME = "math.log"


@register_op
class PowFOp(Operation):
    OP_NAME = "math.powf"

    @classmethod
    def build(cls, builder: OpBuilder, base: Value, exponent: Value):
        return builder.create(cls.OP_NAME, [base, exponent], [base.type])

    def verify_(self) -> None:
        if self.num_operands != 2:
            raise ValueError("math.powf needs 2 operands")
        if self.operand(0).type != self.operand(1).type:
            raise ValueError("math.powf operand types disagree")


@register_op
class FmaOp(Operation):
    """``math.fma(a, b, c) = a*b + c`` — the workhorse of Fig. 7."""

    OP_NAME = "math.fma"

    @classmethod
    def build(cls, builder: OpBuilder, a: Value, b: Value, c: Value):
        return builder.create(cls.OP_NAME, [a, b, c], [a.type])

    def verify_(self) -> None:
        if self.num_operands != 3 or self.num_results != 1:
            raise ValueError("math.fma needs 3 operands and 1 result")
        t = self.operand(0).type
        if not _is_float_like(t):
            raise ValueError("math.fma requires float operands")
        for i in (1, 2):
            if self.operand(i).type != t:
                raise ValueError("math.fma operand types disagree")


def sqrt(b: OpBuilder, x: Value) -> Value:
    return SqrtOp.build(b, x).result()


def absf(b: OpBuilder, x: Value) -> Value:
    return AbsFOp.build(b, x).result()


def fma(b: OpBuilder, x: Value, y: Value, z: Value) -> Value:
    return FmaOp.build(b, x, y, z).result()
