"""Compiler passes and the pass manager.

A :class:`Pass` transforms a module in place; the :class:`PassManager`
runs a pipeline of them, optionally verifying the IR between passes and
recording wall-clock timings (useful for the compile-time numbers in
EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.ir.operation import Operation
from repro.ir.verifier import verify


class Pass:
    """Base class: subclasses set ``name`` and implement :meth:`run`."""

    name: str = "<unnamed>"

    def run(self, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"Pass({self.name})"


class PassManager:
    """Runs a pipeline of passes over a module.

    With ``verify_each=True`` (the default) the structural verifier runs
    after every pass, so a pass that corrupts use-def chains fails fast
    with the pass name attached.

    An optional *gate* — any ``callable(module, after_pass=...)``, in
    practice an :class:`~repro.analysis.analyzer.AnalysisGate` — runs the
    semantic checks on top of the structural verifier: once after the
    whole pipeline by default, or after every pass with
    ``gate_each=True``. Gate time is recorded in :attr:`timings` under
    ``"analysis-gate"`` so :meth:`timing_report` shows the analysis
    overhead next to the transformation passes.
    """

    #: The :attr:`timings` key accumulating gate wall-clock time.
    GATE_TIMING_KEY = "analysis-gate"

    def __init__(
        self,
        passes: Sequence[Pass] = (),
        verify_each: bool = True,
        gate=None,
        gate_each: bool = False,
    ) -> None:
        self.passes: List[Pass] = list(passes)
        self.verify_each = verify_each
        self.gate = gate
        self.gate_each = gate_each
        #: Wall-clock seconds per pass, filled by :meth:`run`.
        self.timings: Dict[str, float] = {}

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def _run_gate(self, module: Operation, after_pass) -> None:
        start = time.perf_counter()
        try:
            self.gate(module, after_pass=after_pass)
        finally:
            self.timings[self.GATE_TIMING_KEY] = (
                self.timings.get(self.GATE_TIMING_KEY, 0.0)
                + time.perf_counter()
                - start
            )

    def run(self, module: Operation) -> None:
        for pass_ in self.passes:
            start = time.perf_counter()
            pass_.run(module)
            self.timings[pass_.name] = (
                self.timings.get(pass_.name, 0.0) + time.perf_counter() - start
            )
            if self.verify_each:
                try:
                    verify(module)
                except Exception as exc:
                    raise RuntimeError(
                        f"IR verification failed after pass {pass_.name!r}: {exc}"
                    ) from exc
            if self.gate is not None and self.gate_each:
                self._run_gate(module, after_pass=pass_.name)
        if self.gate is not None and not self.gate_each:
            self._run_gate(module, after_pass=None)

    def pipeline_description(self) -> str:
        return " -> ".join(p.name for p in self.passes)

    def timing_report(self, title: str = "pass timings") -> str:
        """Per-pass wall-clock breakdown, slowest first.

        The observability hook used by ``examples/inspect_pipeline.py``,
        the autotuner and the compile-time benchmarks.
        """
        total = sum(self.timings.values())
        lines = [f"{title} (total {total * 1e3:.2f} ms)"]
        width = max((len(n) for n in self.timings), default=0)
        for name, seconds in sorted(
            self.timings.items(), key=lambda kv: kv[1], reverse=True
        ):
            share = 100.0 * seconds / total if total else 0.0
            lines.append(
                f"  {name.ljust(width)}  {seconds * 1e3:8.3f} ms  {share:5.1f}%"
            )
        return "\n".join(lines)
