"""Compiler passes and the pass manager.

A :class:`Pass` transforms a module in place; the :class:`PassManager`
runs a pipeline of them, optionally verifying the IR between passes and
recording wall-clock timings (useful for the compile-time numbers in
EXPERIMENTS.md).
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Sequence

from repro.ir.operation import Operation
from repro.ir.verifier import verify
from repro.runtime.resilience.faults import maybe_inject


class Pass:
    """Base class: subclasses set ``name`` and implement :meth:`run`."""

    name: str = "<unnamed>"

    def run(self, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"Pass({self.name})"


class PassManager:
    """Runs a pipeline of passes over a module.

    With ``verify_each=True`` (the default) the structural verifier runs
    after every pass, so a pass that corrupts use-def chains fails fast
    with the pass name attached.

    An optional *gate* — any ``callable(module, after_pass=...)``, in
    practice an :class:`~repro.analysis.analyzer.AnalysisGate` — runs the
    semantic checks on top of the structural verifier: once after the
    whole pipeline by default, or after every pass with
    ``gate_each=True``. Gate time is recorded in :attr:`timings` under
    ``"analysis-gate"``.

    An optional *validator* — in practice a
    :class:`~repro.analysis.tv.TranslationValidator` — is called as
    ``validator.begin(module)`` before the first pass (capturing the
    reference schedule) and ``validator.after_pass(module, name)`` after
    every pass, with its time recorded under ``"translation-validate"``.

    Both hooks can fire many times per :meth:`run`; :attr:`timings`
    *aggregates* wall-clock across invocations (it never overwrites an
    earlier measurement) and :attr:`invocations` counts them, so
    :meth:`timing_report` shows, e.g., ``analysis-gate ... x7``.
    """

    #: The :attr:`timings` key accumulating gate wall-clock time.
    GATE_TIMING_KEY = "analysis-gate"
    #: The :attr:`timings` key accumulating translation-validator time.
    VALIDATE_TIMING_KEY = "translation-validate"

    def __init__(
        self,
        passes: Sequence[Pass] = (),
        verify_each: bool = True,
        gate=None,
        gate_each: bool = False,
        validator=None,
    ) -> None:
        self.passes: List[Pass] = list(passes)
        self.verify_each = verify_each
        self.gate = gate
        self.gate_each = gate_each
        self.validator = validator
        #: Wall-clock seconds per pass/hook, aggregated by :meth:`run`.
        self.timings: Dict[str, float] = {}
        #: Number of times each :attr:`timings` key was measured.
        self.invocations: Dict[str, int] = {}

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def _record(self, key: str, seconds: float) -> None:
        self.timings[key] = self.timings.get(key, 0.0) + seconds
        self.invocations[key] = self.invocations.get(key, 0) + 1

    def _run_gate(self, module: Operation, after_pass) -> None:
        start = time.perf_counter()
        try:
            self.gate(module, after_pass=after_pass)
        finally:
            self._record(self.GATE_TIMING_KEY, time.perf_counter() - start)

    def _run_validator(self, module: Operation, after_pass) -> None:
        start = time.perf_counter()
        try:
            if after_pass is None:
                self.validator.begin(module)
            else:
                self.validator.after_pass(module, after_pass)
        finally:
            self._record(
                self.VALIDATE_TIMING_KEY, time.perf_counter() - start
            )

    def _run_single(self, pass_: Pass, module: Operation) -> None:
        """One pass plus its verify/validate/gate hooks (the unit the
        resilient subclass retries from an IR snapshot). The
        ``pipeline.pass-run`` / ``pipeline.verify`` fault sites live
        here so chaos tests exercise every pipeline, resilient or not.
        """
        maybe_inject("pipeline.pass-run", pass_name=pass_.name)
        start = time.perf_counter()
        pass_.run(module)
        self._record(pass_.name, time.perf_counter() - start)
        if self.verify_each:
            try:
                maybe_inject("pipeline.verify", pass_name=pass_.name)
                verify(module)
            except Exception as exc:
                raise RuntimeError(
                    f"IR verification failed after pass {pass_.name!r}: {exc}"
                ) from exc
        if self.validator is not None:
            self._run_validator(module, pass_.name)
        if self.gate is not None and self.gate_each:
            self._run_gate(module, after_pass=pass_.name)

    def run(self, module: Operation) -> Operation:
        # Passes and hooks churn through large volumes of acyclic IR
        # nodes and analysis tuples that reference counting reclaims by
        # itself; the cyclic collector firing mid-pipeline walks the
        # whole IR graph repeatedly and costs more wall clock than it
        # recovers. Suspend it for the pipeline, restore on exit.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self.validator is not None:
                self._run_validator(module, None)
            for pass_ in self.passes:
                self._run_single(pass_, module)
            if self.gate is not None and not self.gate_each:
                self._run_gate(module, after_pass=None)
        finally:
            if gc_was_enabled:
                gc.enable()
        return module

    def pipeline_description(self) -> str:
        return " -> ".join(p.name for p in self.passes)

    def timing_report(self, title: str = "pass timings") -> str:
        """Per-pass wall-clock breakdown, slowest first.

        The observability hook used by ``examples/inspect_pipeline.py``,
        the autotuner and the compile-time benchmarks. Repeated
        invocations of a key (the analysis gate in ``gate_each`` mode,
        the translation validator, re-run passes) aggregate into one row
        with an ``xN`` invocation count.
        """
        total = sum(self.timings.values())
        lines = [f"{title} (total {total * 1e3:.2f} ms)"]
        width = max((len(n) for n in self.timings), default=0)
        for name, seconds in sorted(
            self.timings.items(), key=lambda kv: kv[1], reverse=True
        ):
            share = 100.0 * seconds / total if total else 0.0
            count = self.invocations.get(name, 1)
            suffix = f"  x{count}" if count > 1 else ""
            lines.append(
                f"  {name.ljust(width)}  {seconds * 1e3:8.3f} ms  "
                f"{share:5.1f}%{suffix}"
            )
        return "\n".join(lines)
