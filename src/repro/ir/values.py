"""SSA values and their use-def chains.

A :class:`Value` is either the result of an operation (:class:`OpResult`)
or an argument of a block (:class:`BlockArgument`). Every value tracks its
uses as ``(operation, operand_index)`` pairs, which is what makes rewrites
(``replace_all_uses_with``) constant-bookkeeping operations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.ir.types import Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.block import Block
    from repro.ir.operation import Operation


class Use:
    """A single use of a value: operand ``operand_index`` of ``owner``."""

    __slots__ = ("owner", "operand_index")

    def __init__(self, owner: "Operation", operand_index: int) -> None:
        self.owner = owner
        self.operand_index = operand_index

    def __repr__(self) -> str:
        return f"Use({self.owner.name}, #{self.operand_index})"


class Value:
    """Base class for SSA values."""

    def __init__(self, type: Type) -> None:
        self.type = type
        self.uses: List[Use] = []
        #: Optional name hint used by the printer (e.g. ``%X`` over ``%3``).
        self.name_hint: Optional[str] = None

    @property
    def has_uses(self) -> bool:
        return bool(self.uses)

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    def users(self) -> List["Operation"]:
        """Distinct operations using this value, in first-use order."""
        seen: List["Operation"] = []
        for use in self.uses:
            if use.owner not in seen:
                seen.append(use.owner)
        return seen

    def replace_all_uses_with(self, other: "Value") -> None:
        """Redirect every use of ``self`` to ``other``."""
        if other is self:
            return
        for use in list(self.uses):
            use.owner.set_operand(use.operand_index, other)

    def owner_block(self) -> Optional["Block"]:
        """The block this value is defined in (None if detached)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}<{self.type}>"


class OpResult(Value):
    """Result number ``index`` of operation ``op``."""

    def __init__(self, type: Type, op: "Operation", index: int) -> None:
        super().__init__(type)
        self.op = op
        self.index = index

    def owner_block(self) -> Optional["Block"]:
        return self.op.parent

    def __repr__(self) -> str:
        return f"OpResult<{self.type}> of {self.op.name}#{self.index}"


class BlockArgument(Value):
    """Argument number ``index`` of ``block`` (functional-SSA PHI node)."""

    def __init__(self, type: Type, block: "Block", index: int) -> None:
        super().__init__(type)
        self.block = block
        self.index = index

    def owner_block(self) -> Optional["Block"]:
        return self.block

    def __repr__(self) -> str:
        return f"BlockArgument<{self.type}>#{self.index}"
