"""Structural IR verification.

Checks, for every operation reachable from the root:

* use-def coherence: each operand's recorded uses actually point back at
  the using operation;
* SSA dominance inside blocks: a value defined by an operation may only be
  used by later operations of the same block or inside blocks nested in
  regions that the definition dominates (values from enclosing ops are
  visible in nested regions, as in MLIR);
* results are not used from outside the region structure that can see
  them;
* op-specific invariants via :meth:`Operation.verify_`.
"""

from __future__ import annotations

from typing import Set

from repro.ir.block import Block
from repro.ir.operation import Operation
from repro.ir.values import BlockArgument, OpResult, Value


class IRVerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def _fail(op: Operation, message: str) -> "IRVerificationError":
    """An :class:`IRVerificationError` anchored at ``op``.

    The message carries the op's structural path inside the module and a
    short printed excerpt, so a failure deep inside a lowered nest is
    findable without bisecting the printout by hand.
    """
    from repro.ir.location import op_excerpt, op_path

    lines = [f"{op.name}: {message}", f"  at {op_path(op)}"]
    excerpt = op_excerpt(op, max_lines=4)
    lines.extend(f"  | {row}" for row in excerpt.splitlines())
    return IRVerificationError("\n".join(lines))


def verify(root: Operation) -> None:
    """Verify ``root`` and everything nested under it; raise on failure."""
    _verify_op(root, visible=set())


def _verify_op(op: Operation, visible: Set[int]) -> None:
    for i, operand in enumerate(op.operands):
        if id(operand) not in visible:
            raise _fail(
                op, f"operand #{i} ({operand!r}) does not dominate its use"
            )
        if not any(
            u.owner is op and u.operand_index == i for u in operand.uses
        ):
            raise _fail(op, f"use-def chain of operand #{i} is corrupt")
    try:
        op.verify_()
    except IRVerificationError:
        raise
    except Exception as exc:  # surface op verifier failures uniformly
        raise _fail(op, str(exc)) from exc
    for region in op.regions:
        for block in region.blocks:
            _verify_block(block, visible, op)


def _verify_block(block: Block, visible: Set[int], parent_op: Operation) -> None:
    if block.parent is None or block.parent.parent is not parent_op:
        raise IRVerificationError(
            f"block inside {parent_op.name} has a corrupt parent link"
        )
    inner = set(visible)
    for arg in block.arguments:
        if not isinstance(arg, BlockArgument) or arg.block is not block:
            raise _fail(parent_op, "block argument has a corrupt owner link")
        inner.add(id(arg))
    for op in block.operations:
        if op.parent is not block:
            raise _fail(op, "corrupt parent-block link")
        _verify_op(op, inner)
        for res in op.results:
            if not isinstance(res, OpResult) or res.op is not op:
                raise _fail(op, "corrupt result link")
            inner.add(id(res))


def collect_values(op: Operation) -> Set[Value]:
    """All values defined at or under ``op`` (results + block arguments)."""
    out: Set[Value] = set()
    for nested in op.walk():
        out.update(nested.results)
        for region in nested.regions:
            for block in region.blocks:
                out.update(block.arguments)
    return out
