"""The type system of the mini-MLIR.

Types are immutable, hashable value objects. Two types compare equal when
they denote the same type, which lets client code use ``==`` freely, exactly
like MLIR's uniqued types.

The dynamic-dimension sentinel is ``DYNAMIC`` (printed ``?``), mirroring
``ShapedType::kDynamic`` in MLIR.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

#: Sentinel for a dynamic dimension in a shaped type (printed as ``?``).
DYNAMIC = -1


class Type:
    """Base class of all types. Subclasses must be immutable and hashable."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        """Uniquing key: subclasses with parameters must override."""
        return ()

    def __repr__(self) -> str:
        return str(self)


class NoneType(Type):
    """The unit type: the "result" of ops that produce no value."""

    def __str__(self) -> str:
        return "none"


class IndexType(Type):
    """Platform-sized integer used for loop induction variables and sizes."""

    def __str__(self) -> str:
        return "index"


class IntegerType(Type):
    """Fixed-width integer type, e.g. ``i1``, ``i32``, ``i64``."""

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError(f"integer width must be positive, got {width}")
        self.width = width

    def _key(self) -> tuple:
        return (self.width,)

    def __str__(self) -> str:
        return f"i{self.width}"


class FloatType(Type):
    """Base class for floating-point types."""

    width: int = 0


class F32Type(FloatType):
    """IEEE-754 binary32."""

    width = 32

    def __str__(self) -> str:
        return "f32"


class F64Type(FloatType):
    """IEEE-754 binary64 — the element type of every CFD field."""

    width = 64

    def __str__(self) -> str:
        return "f64"


class ShapedType(Type):
    """Base class of types with a shape and an element type."""

    def __init__(self, shape: Sequence[int], element_type: Type) -> None:
        shape = tuple(int(d) for d in shape)
        for d in shape:
            if d < 0 and d != DYNAMIC:
                raise ValueError(f"invalid dimension {d} in shape {shape}")
        self.shape: Tuple[int, ...] = shape
        self.element_type = element_type

    @property
    def rank(self) -> int:
        return len(self.shape)

    def has_static_shape(self) -> bool:
        return all(d != DYNAMIC for d in self.shape)

    def is_dynamic_dim(self, i: int) -> bool:
        return self.shape[i] == DYNAMIC

    def num_elements(self) -> int:
        """Total element count; requires a fully static shape."""
        if not self.has_static_shape():
            raise ValueError(f"{self} has dynamic dimensions")
        n = 1
        for d in self.shape:
            n *= d
        return n

    def _key(self) -> tuple:
        return (self.shape, self.element_type)

    def _shape_str(self) -> str:
        dims = "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)
        return f"{dims}x" if self.shape else ""


class TensorType(ShapedType):
    """Immutable multi-dimensional array value (SSA semantics)."""

    def __str__(self) -> str:
        return f"tensor<{self._shape_str()}{self.element_type}>"


class MemRefType(ShapedType):
    """Mutable in-memory buffer with a row-major layout."""

    def __str__(self) -> str:
        return f"memref<{self._shape_str()}{self.element_type}>"


class VectorType(ShapedType):
    """Hardware-vector type; always statically shaped."""

    def __init__(self, shape: Sequence[int], element_type: Type) -> None:
        super().__init__(shape, element_type)
        if not self.has_static_shape():
            raise ValueError("vector types must have a static shape")

    def __str__(self) -> str:
        return f"vector<{self._shape_str()}{self.element_type}>"


class FunctionType(Type):
    """A function signature: ``(inputs) -> results``."""

    def __init__(self, inputs: Sequence[Type], results: Sequence[Type]) -> None:
        self.inputs: Tuple[Type, ...] = tuple(inputs)
        self.results: Tuple[Type, ...] = tuple(results)

    def _key(self) -> tuple:
        return (self.inputs, self.results)

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        if len(self.results) == 1:
            return f"({ins}) -> {self.results[0]}"
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


def tensor_of(shape: Sequence[int], element_type: Optional[Type] = None) -> TensorType:
    """Convenience constructor: ``tensor_of([2, 3])`` is a 2x3 f64 tensor."""
    return TensorType(shape, element_type or f64)


def memref_of(shape: Sequence[int], element_type: Optional[Type] = None) -> MemRefType:
    """Convenience constructor for f64 memrefs."""
    return MemRefType(shape, element_type or f64)


def vector_of(length: int, element_type: Optional[Type] = None) -> VectorType:
    """Convenience constructor for 1-D f64 vectors (the common VF case)."""
    return VectorType([length], element_type or f64)


# Singleton instances for the common types; compare with ``==`` or ``is``.
none = NoneType()
index = IndexType()
i1 = IntegerType(1)
i32 = IntegerType(32)
i64 = IntegerType(64)
f32 = F32Type()
f64 = F64Type()
