"""Textual IR printer.

Prints the canonical generic form, one op per line::

    %0 = arith.addf(%arg0, %1) : (f64, f64) -> f64
    %2 = scf.for(%lb, %ub, %step, %init) ({
    ^bb0(%iv: index, %acc: f64):
      ...
      scf.yield(%3) : (f64) -> ()
    }) : (index, index, index, f64) -> f64

Every printed module parses back with :mod:`repro.ir.parser`; the
round-trip property is exercised by the test suite.
"""

from __future__ import annotations

import io
from typing import Dict, Optional, TextIO

from repro.ir.block import Block, Region
from repro.ir.operation import Operation
from repro.ir.values import Value

_INDENT = "  "


class _NameManager:
    """Assigns unique printable names to SSA values, honoring hints."""

    def __init__(self) -> None:
        self._names: Dict[int, str] = {}
        self._used: set = set()
        self._counter = 0

    def name_of(self, value: Value) -> str:
        key = id(value)
        name = self._names.get(key)
        if name is not None:
            return name
        hint = value.name_hint
        if hint:
            candidate = hint
            suffix = 0
            while candidate in self._used:
                suffix += 1
                candidate = f"{hint}_{suffix}"
            name = candidate
        else:
            while str(self._counter) in self._used:
                self._counter += 1
            name = str(self._counter)
            self._counter += 1
        self._names[key] = name
        self._used.add(name)
        return name


class Printer:
    """Stateful printer; create one per module to keep numbering stable."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream or io.StringIO()
        self.names = _NameManager()

    def value_name(self, value: Value) -> str:
        return "%" + self.names.name_of(value)

    def print_op(self, op: Operation, indent: int = 0) -> None:
        pad = _INDENT * indent
        parts = []
        if op.results:
            parts.append(", ".join(self.value_name(r) for r in op.results))
            parts.append(" = ")
        parts.append(op.name)
        parts.append("(")
        parts.append(", ".join(self.value_name(o) for o in op.operands))
        parts.append(")")
        if op.attributes:
            attr_items = ", ".join(
                f"{k} = {v}" for k, v in sorted(op.attributes.items())
            )
            parts.append(" {" + attr_items + "}")
        self.stream.write(pad + "".join(parts))
        if op.regions:
            self.stream.write(" (")
            for i, region in enumerate(op.regions):
                if i:
                    self.stream.write(", ")
                self.print_region(region, indent)
            self.stream.write(")")
        operand_types = ", ".join(str(o.type) for o in op.operands)
        result_types = ", ".join(str(r.type) for r in op.results)
        self.stream.write(f" : ({operand_types}) -> ({result_types})\n")

    def print_region(self, region: Region, indent: int) -> None:
        self.stream.write("{\n")
        for block in region.blocks:
            self.print_block(block, indent + 1)
        self.stream.write(_INDENT * indent + "}")

    def print_block(self, block: Block, indent: int) -> None:
        pad = _INDENT * (indent - 1)
        args = ", ".join(
            f"{self.value_name(a)}: {a.type}" for a in block.arguments
        )
        self.stream.write(f"{pad}^bb({args}):\n")
        for op in block.operations:
            self.print_op(op, indent)

    def getvalue(self) -> str:
        return self.stream.getvalue()  # type: ignore[union-attr]


def print_op(op: Operation) -> str:
    """Render a single operation (and its regions) to a string."""
    p = Printer()
    p.print_op(op)
    return p.getvalue()


def print_module(module: Operation) -> str:
    """Render a module to its textual form."""
    return print_op(module)
