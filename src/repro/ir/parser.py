"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

The grammar is the printer's canonical generic form:

.. code-block:: text

    op      ::= (value-ids `=`)? op-name `(` value-ids? `)` attr-dict?
                region-list? `:` `(` types? `)` `->` `(` types? `)`
    region  ::= `{` block+ `}`
    block   ::= `^bb` `(` (value-id `:` type)* `)` `:` op*
    attr    ::= int (`:` type)? | float (`:` type)? | bool | string
              | `[` attrs `]` | `dense` `<` nested-ints `>` | type

``parse_module(print_module(m))`` reproduces ``m`` up to value identity;
round-tripping is part of the test suite.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseIntElementsAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    TypeAttr,
)
from repro.ir.block import Block, Region
from repro.ir.operation import Operation, create_operation
from repro.ir.types import (
    DYNAMIC,
    F32Type,
    F64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    Type,
    VectorType,
)
from repro.ir.values import Value


class IRParseError(Exception):
    """Raised on malformed textual IR, with line/column context."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<valueid>%[A-Za-z0-9_]+)
  | (?P<caret>\^bb)
  | (?P<arrow>->)
  | (?P<number>-?\d+\.\d+(?:[eE][+-]?\d+)?|-?\d+[eE][+-]?\d+|-?\d+|-?inf|nan)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[(){}\[\]<>:,=?])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text!r}"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            line = text.count("\n", 0, pos) + 1
            raise IRParseError(f"unexpected character {text[pos]!r} at line {line}")
        pos = m.end()
        kind = m.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, m.group(), m.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Scope:
    """A lexical scope of SSA value names, chained to its parent."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.values: Dict[str, Value] = {}

    def define(self, name: str, value: Value) -> None:
        self.values[name] = value

    def lookup(self, name: str) -> Optional[Value]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.values:
                return scope.values[name]
            scope = scope.parent
        return None


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    # ---- token helpers ---------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.i]

    def next(self) -> _Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def error(self, message: str) -> IRParseError:
        tok = self.peek()
        line = self.text.count("\n", 0, tok.pos) + 1
        return IRParseError(f"line {line}: {message} (got {tok.text!r})")

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            self.i -= 1
            raise self.error(f"expected {text!r}")
        return tok

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.i += 1
            return True
        return False

    # ---- types -----------------------------------------------------------

    def parse_type(self) -> Type:
        tok = self.peek()
        if tok.text == "(":
            return self.parse_function_type()
        if tok.kind != "ident":
            raise self.error("expected a type")
        self.next()
        name = tok.text
        if name == "index":
            return IndexType()
        if name == "none":
            return NoneType()
        if name == "f32":
            return F32Type()
        if name == "f64":
            return F64Type()
        if re.fullmatch(r"i\d+", name):
            return IntegerType(int(name[1:]))
        if name in ("tensor", "memref", "vector"):
            body = self.capture_angle_brackets()
            shape, elem = self.split_shaped_body(body)
            if name == "tensor":
                return TensorType(shape, elem)
            if name == "memref":
                return MemRefType(shape, elem)
            return VectorType(shape, elem)
        raise self.error(f"unknown type {name!r}")

    def parse_function_type(self) -> FunctionType:
        self.expect("(")
        inputs: List[Type] = []
        if not self.accept(")"):
            inputs.append(self.parse_type())
            while self.accept(","):
                inputs.append(self.parse_type())
            self.expect(")")
        self.expect("->")
        results: List[Type] = []
        if self.accept("("):
            if not self.accept(")"):
                results.append(self.parse_type())
                while self.accept(","):
                    results.append(self.parse_type())
                self.expect(")")
        else:
            results.append(self.parse_type())
        return FunctionType(inputs, results)

    def capture_angle_brackets(self) -> str:
        """Capture the raw text of a balanced ``<...>`` group."""
        open_tok = self.expect("<")
        depth = 1
        start = open_tok.pos + 1
        while depth:
            tok = self.next()
            if tok.kind == "eof":
                raise self.error("unterminated '<'")
            if tok.text == "<":
                depth += 1
            elif tok.text == ">":
                depth -= 1
        end = self.tokens[self.i - 1].pos
        return self.text[start:end]

    @staticmethod
    def split_shaped_body(body: str) -> Tuple[List[int], Type]:
        """Split ``4x?xf64`` into the shape ``[4, -1]`` and element type."""
        parts = body.strip().split("x")
        shape: List[int] = []
        elem_parts: List[str] = []
        for i, part in enumerate(parts):
            part = part.strip()
            if part == "?":
                shape.append(DYNAMIC)
            elif re.fullmatch(r"\d+", part):
                shape.append(int(part))
            else:
                elem_parts = parts[i:]
                break
        else:
            raise IRParseError(f"shaped type {body!r} lacks an element type")
        elem = _Parser("x".join(elem_parts)).parse_type()
        return shape, elem

    # ---- attributes -------------------------------------------------------

    def parse_attribute(self) -> Attribute:
        tok = self.peek()
        if tok.kind == "string":
            self.next()
            raw = tok.text[1:-1]
            return StringAttr(raw.replace('\\"', '"').replace("\\\\", "\\"))
        if tok.text in ("true", "false"):
            self.next()
            return BoolAttr(tok.text == "true")
        if tok.text == "[":
            self.next()
            elements: List[Attribute] = []
            if not self.accept("]"):
                elements.append(self.parse_attribute())
                while self.accept(","):
                    elements.append(self.parse_attribute())
                self.expect("]")
            return ArrayAttr(elements)
        if tok.text == "dense":
            self.next()
            body = self.capture_angle_brackets()
            return DenseIntElementsAttr(_parse_nested_ints(body))
        if tok.kind == "number":
            self.next()
            is_float = any(c in tok.text for c in ".eE") or tok.text in (
                "inf",
                "-inf",
                "nan",
            )
            value_text = tok.text
            type_: Optional[Type] = None
            if self.accept(":"):
                type_ = self.parse_type()
            if is_float or isinstance(type_, (F32Type, F64Type)):
                return FloatAttr(float(value_text), type_ or F64Type())
            return IntegerAttr(int(value_text), type_ or IntegerType(64))
        # Anything else must be a type attribute, e.g. `(f64) -> f64`.
        return TypeAttr(self.parse_type())

    def parse_attr_dict(self) -> Dict[str, Attribute]:
        attrs: Dict[str, Attribute] = {}
        self.expect("{")
        if self.accept("}"):
            return attrs
        while True:
            name_tok = self.next()
            if name_tok.kind != "ident":
                raise self.error("expected attribute name")
            self.expect("=")
            attrs[name_tok.text] = self.parse_attribute()
            if self.accept("}"):
                return attrs
            self.expect(",")

    # ---- operations, regions, blocks ---------------------------------------

    def parse_op(self, scope: _Scope) -> Operation:
        result_names: List[str] = []
        if self.peek().kind == "valueid":
            result_names.append(self.next().text)
            while self.accept(","):
                result_names.append(self.next().text)
            self.expect("=")
        name_tok = self.next()
        if name_tok.kind != "ident":
            raise self.error("expected operation name")
        self.expect("(")
        operand_names: List[str] = []
        if not self.accept(")"):
            while True:
                tok = self.next()
                if tok.kind != "valueid":
                    raise self.error("expected operand %id")
                operand_names.append(tok.text)
                if self.accept(")"):
                    break
                self.expect(",")
        attrs: Dict[str, Attribute] = {}
        if self.peek().text == "{":
            attrs = self.parse_attr_dict()
        regions: List[Region] = []
        if self.peek().text == "(" and self.tokens[self.i + 1].text == "{":
            self.next()  # "("
            regions.append(self.parse_region(scope))
            while self.accept(","):
                regions.append(self.parse_region(scope))
            self.expect(")")
        self.expect(":")
        fn_type = self.parse_function_type()
        operands: List[Value] = []
        for op_name in operand_names:
            value = scope.lookup(op_name[1:])
            if value is None:
                raise self.error(f"use of undefined value {op_name}")
            operands.append(value)
        op = create_operation(
            name_tok.text, operands, fn_type.results, attrs, regions
        )
        if len(result_names) != len(op.results):
            raise self.error(
                f"{name_tok.text}: {len(result_names)} result names for "
                f"{len(op.results)} results"
            )
        for res_name, res in zip(result_names, op.results):
            scope.define(res_name[1:], res)
            if not res_name[1:].isdigit():
                res.name_hint = res_name[1:]
        return op

    def parse_region(self, outer: _Scope) -> Region:
        self.expect("{")
        region = Region()
        while self.peek().kind == "caret":
            region.append_block(self.parse_block(outer))
        self.expect("}")
        if region.empty:
            raise self.error("region without blocks")
        return region

    def parse_block(self, outer: _Scope) -> Block:
        scope = _Scope(outer)
        self.next()  # ^bb
        self.expect("(")
        block = Block()
        if not self.accept(")"):
            while True:
                tok = self.next()
                if tok.kind != "valueid":
                    raise self.error("expected block argument %id")
                self.expect(":")
                arg = block.add_argument(self.parse_type())
                scope.define(tok.text[1:], arg)
                if not tok.text[1:].isdigit():
                    arg.name_hint = tok.text[1:]
                if self.accept(")"):
                    break
                self.expect(",")
        self.expect(":")
        while self.peek().text not in ("}",) and self.peek().kind not in (
            "caret",
            "eof",
        ):
            block.append(self.parse_op(scope))
        return block


def _parse_nested_ints(body: str):
    body = body.strip()
    tokens = re.findall(r"-?\d+|\[|\]|,", body)

    def parse(pos: int):
        tok = tokens[pos]
        if tok == "[":
            items = []
            pos += 1
            if tokens[pos] == "]":
                return items, pos + 1
            while True:
                item, pos = parse(pos)
                items.append(item)
                if tokens[pos] == "]":
                    return items, pos + 1
                if tokens[pos] != ",":
                    raise IRParseError(f"malformed dense literal: {body!r}")
                pos += 1
        return int(tok), pos + 1

    value, end = parse(0)
    if end != len(tokens):
        raise IRParseError(f"trailing tokens in dense literal: {body!r}")
    return value


def parse_module(text: str) -> Operation:
    """Parse textual IR; the top-level op must be a ``builtin.module``."""
    parser = _Parser(text)
    op = parser.parse_op(_Scope())
    if parser.peek().kind != "eof":
        raise parser.error("trailing input after module")
    if op.name != "builtin.module":
        raise IRParseError(f"expected builtin.module at top level, got {op.name}")
    return op
