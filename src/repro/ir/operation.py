"""Operations: the single unit of semantics in the IR.

Every operation has a dotted name (``dialect.mnemonic``), a list of SSA
operands, a list of typed results, a dictionary of attributes and a list of
regions. Dialects *register* operation subclasses against
:class:`OpRegistry` so the parser and generic passes can construct the
right class from a name; unregistered names fall back to the generic
:class:`Operation`, exactly like MLIR's unregistered-op mechanism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Type as PyType

from repro.ir.attributes import Attribute
from repro.ir.types import Type
from repro.ir.values import OpResult, Use, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.block import Block, Region


class OpRegistry:
    """Global name -> operation-class registry populated by dialects."""

    _ops: Dict[str, PyType["Operation"]] = {}

    @classmethod
    def register(cls, op_class: PyType["Operation"]) -> None:
        name = getattr(op_class, "OP_NAME", None)
        if not name:
            raise ValueError(f"{op_class.__name__} lacks an OP_NAME")
        existing = cls._ops.get(name)
        if existing is not None and existing is not op_class:
            raise ValueError(f"operation {name!r} registered twice")
        cls._ops[name] = op_class

    @classmethod
    def lookup(cls, name: str) -> Optional[PyType["Operation"]]:
        return cls._ops.get(name)

    @classmethod
    def registered_names(cls) -> List[str]:
        return sorted(cls._ops)


def register_op(op_class: PyType["Operation"]) -> PyType["Operation"]:
    """Class decorator registering an operation with :class:`OpRegistry`."""
    OpRegistry.register(op_class)
    return op_class


class Operation:
    """A generic operation; dialect ops subclass this with ``OP_NAME`` set.

    Subclasses may override :meth:`verify_` for op-specific invariants and
    usually provide a ``build(...)`` classmethod for ergonomic creation.
    """

    #: Dotted operation name, e.g. ``"arith.addf"``; set by subclasses.
    OP_NAME: str = ""

    def __init__(
        self,
        name: Optional[str] = None,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, Attribute]] = None,
        regions: Sequence["Region"] = (),
    ) -> None:
        self.name = name or self.OP_NAME
        if not self.name:
            raise ValueError("operation needs a name")
        self._operands: List[Value] = []
        self.results: List[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes: Dict[str, Attribute] = dict(attributes or {})
        self.regions: List["Region"] = []
        #: The block containing this operation, if inserted.
        self.parent: Optional["Block"] = None
        for operand in operands:
            self.append_operand(operand)
        for region in regions:
            self.append_region(region)

    # ---- operands -------------------------------------------------------

    @property
    def operands(self) -> List[Value]:
        return list(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, i: int) -> Value:
        return self._operands[i]

    def append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise TypeError(f"operand of {self.name} is {value!r}, not a Value")
        self._operands.append(value)
        value.uses.append(Use(self, len(self._operands) - 1))

    def set_operand(self, i: int, value: Value) -> None:
        old = self._operands[i]
        old.uses[:] = [
            u for u in old.uses if not (u.owner is self and u.operand_index == i)
        ]
        self._operands[i] = value
        value.uses.append(Use(self, i))

    def set_operands(self, values: Sequence[Value]) -> None:
        self._drop_all_operand_uses()
        self._operands = []
        for v in values:
            self.append_operand(v)

    def _drop_all_operand_uses(self) -> None:
        for i, operand in enumerate(self._operands):
            operand.uses[:] = [
                u
                for u in operand.uses
                if not (u.owner is self and u.operand_index == i)
            ]

    # ---- results --------------------------------------------------------

    @property
    def num_results(self) -> int:
        return len(self.results)

    def result(self, i: int = 0) -> OpResult:
        return self.results[i]

    # ---- regions --------------------------------------------------------

    def append_region(self, region: "Region") -> None:
        region.parent = self
        self.regions.append(region)

    def region(self, i: int = 0) -> "Region":
        return self.regions[i]

    # ---- structure ------------------------------------------------------

    def parent_op(self) -> Optional["Operation"]:
        """The operation owning the region containing this op."""
        if self.parent is None or self.parent.parent is None:
            return None
        return self.parent.parent.parent

    def is_ancestor_of(self, other: "Operation") -> bool:
        op: Optional["Operation"] = other
        while op is not None:
            if op is self:
                return True
            op = op.parent_op()
        return False

    def walk(self) -> Iterator["Operation"]:
        """Pre-order traversal of this op and everything nested under it."""
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op.walk()

    def erase(self) -> None:
        """Remove from the parent block and drop operand uses.

        The op must have no remaining uses of its results.
        """
        for res in self.results:
            if res.has_uses:
                raise ValueError(
                    f"cannot erase {self.name}: result #{res.index} still has uses"
                )
        self._drop_all_operand_uses()
        if self.parent is not None:
            self.parent.remove_op(self)

    def drop_all_uses_and_erase(self) -> None:
        """Erase even if results are used (users must be erased separately)."""
        for res in self.results:
            res.uses.clear()
        self._drop_all_operand_uses()
        if self.parent is not None:
            self.parent.remove_op(self)

    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy this operation.

        ``value_map`` maps old values to their replacements; operands found
        in the map are remapped, results and block arguments of the clone
        are entered into the map so nested uses resolve correctly.
        """
        from repro.ir.block import Block, Region

        value_map = value_map if value_map is not None else {}
        operands = [value_map.get(o, o) for o in self._operands]
        cls = type(self)
        new = Operation.__new__(cls)
        Operation.__init__(
            new,
            name=self.name,
            operands=operands,
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
        )
        for old_res, new_res in zip(self.results, new.results):
            new_res.name_hint = old_res.name_hint
            value_map[old_res] = new_res
        for region in self.regions:
            new_region = Region()
            for block in region.blocks:
                new_block = Block(arg_types=[a.type for a in block.arguments])
                for old_arg, new_arg in zip(block.arguments, new_block.arguments):
                    new_arg.name_hint = old_arg.name_hint
                    value_map[old_arg] = new_arg
                new_region.append_block(new_block)
            for block, new_block in zip(region.blocks, new_region.blocks):
                for op in block.operations:
                    new_block.append(op.clone(value_map))
            new.append_region(new_region)
        return new

    # ---- structural hashing / equivalence --------------------------------

    def structural_key(self) -> tuple:
        """A hashable key capturing this op's *shallow* structure.

        Two region-free operations with equal keys compute the same value
        whenever they are side-effect free: the key covers the op name,
        the identities of the operands, the attribute dictionary and the
        result types. This is what the CSE pass hashes on.
        """
        return (
            self.name,
            tuple(id(o) for o in self._operands),
            tuple(sorted(self.attributes.items(), key=lambda kv: kv[0])),
            tuple(self.results[i].type for i in range(len(self.results))),
            len(self.regions),
        )

    def structural_hash(self) -> int:
        """A deep structural hash: insensitive to SSA value identity.

        Values are numbered by first occurrence (operands defined outside
        this op hash by position of first use), so two independently built
        but isomorphic subtrees hash equal. Collisions are possible, as
        with any hash; use :meth:`is_structurally_equivalent` to confirm.
        """
        numbering: Dict[int, int] = {}

        def value_num(v: Value) -> int:
            return numbering.setdefault(id(v), len(numbering))

        parts: List[object] = []

        def visit(op: "Operation") -> None:
            parts.append(op.name)
            parts.append(tuple(value_num(o) for o in op._operands))
            parts.append(tuple(sorted(op.attributes.items(), key=lambda kv: kv[0])))
            parts.append(tuple(r.type for r in op.results))
            for r in op.results:
                value_num(r)
            for region in op.regions:
                parts.append("region")
                for block in region.blocks:
                    parts.append(tuple(a.type for a in block.arguments))
                    for a in block.arguments:
                        value_num(a)
                    for inner in block.operations:
                        visit(inner)

        visit(self)
        return hash(tuple(parts))

    def is_structurally_equivalent(
        self, other: "Operation", value_map: Optional[Dict[Value, Value]] = None
    ) -> bool:
        """Deep structural equality up to SSA value renaming.

        ``value_map`` carries the correspondence of already-matched values
        (e.g. function arguments); it is extended with this op's results
        and nested block arguments as matching proceeds. Operands defined
        *outside* the compared ops must be identical (or already mapped).
        """
        value_map = value_map if value_map is not None else {}
        if (
            self.name != other.name
            or self.num_operands != other.num_operands
            or self.num_results != other.num_results
            or len(self.regions) != len(other.regions)
            or self.attributes != other.attributes
        ):
            return False
        for mine, theirs in zip(self._operands, other._operands):
            if value_map.get(mine, mine) is not theirs:
                return False
        for mine_r, theirs_r in zip(self.results, other.results):
            if mine_r.type != theirs_r.type:
                return False
            value_map[mine_r] = theirs_r
        for my_region, other_region in zip(self.regions, other.regions):
            if len(my_region.blocks) != len(other_region.blocks):
                return False
            for my_block, other_block in zip(my_region.blocks, other_region.blocks):
                if len(my_block.arguments) != len(other_block.arguments):
                    return False
                if len(my_block.operations) != len(other_block.operations):
                    return False
                for a, b in zip(my_block.arguments, other_block.arguments):
                    if a.type != b.type:
                        return False
                    value_map[a] = b
                for my_op, other_op in zip(my_block.operations, other_block.operations):
                    if not my_op.is_structurally_equivalent(other_op, value_map):
                        return False
        return True

    # ---- verification ---------------------------------------------------

    def verify_(self) -> None:
        """Op-specific invariants; overridden by dialect operations."""

    # ---- display --------------------------------------------------------

    def __repr__(self) -> str:
        res = ", ".join(str(r.type) for r in self.results)
        return f"<{self.name} -> ({res})>"


def create_operation(
    name: str,
    operands: Sequence[Value] = (),
    result_types: Sequence[Type] = (),
    attributes: Optional[Dict[str, Attribute]] = None,
    regions: Sequence["Region"] = (),
) -> Operation:
    """Create an op of the registered class for ``name`` (generic fallback)."""
    cls = OpRegistry.lookup(name) or Operation
    op = Operation.__new__(cls)
    Operation.__init__(op, name, operands, result_types, attributes, regions)
    return op
