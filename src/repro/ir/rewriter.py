"""Pattern rewriting: the mechanism behind every lowering in this repo.

A :class:`RewritePattern` matches one operation and, through a
:class:`PatternRewriter`, replaces it with new IR.
:func:`apply_patterns_greedily` runs a worklist driver until no pattern
applies anywhere under the root — the moral equivalent of MLIR's greedy
pattern-rewrite driver.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.builder import InsertionPoint, OpBuilder
from repro.ir.operation import Operation
from repro.ir.values import Value


class PatternRewriter(OpBuilder):
    """An :class:`OpBuilder` that also erases/replaces matched ops.

    The driver positions the insertion point right before the matched op,
    so patterns can emit replacement IR and then call
    :meth:`replace_op` / :meth:`erase_op`.
    """

    def __init__(self) -> None:
        super().__init__(None)
        self.changed = False

    def notify_changed(self) -> None:
        self.changed = True

    def replace_op(self, op: Operation, new_values: Sequence[Value]) -> None:
        """Replace all results of ``op`` with ``new_values`` and erase it."""
        if len(new_values) != len(op.results):
            raise ValueError(
                f"replace_op: {len(new_values)} replacement values for "
                f"{len(op.results)} results of {op.name}"
            )
        for res, new in zip(op.results, new_values):
            res.replace_all_uses_with(new)
        op.erase()
        self.notify_changed()

    def erase_op(self, op: Operation) -> None:
        op.erase()
        self.notify_changed()


class RewritePattern:
    """Base class: override :meth:`match_and_rewrite`.

    Return ``True`` when the op was rewritten (the driver restarts from the
    new state), ``False`` when the pattern does not apply.
    """

    #: Restrict the pattern to one op name; ``None`` matches any op.
    op_name: Optional[str] = None

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return type(self).__name__


def apply_patterns_greedily(
    root: Operation,
    patterns: Sequence[RewritePattern],
    max_iterations: int = 1000,
) -> bool:
    """Apply ``patterns`` everywhere under ``root`` until fixpoint.

    Returns ``True`` if anything changed. Raises if the rewrite does not
    converge within ``max_iterations`` sweeps (a looping pattern bug).
    """
    rewriter = PatternRewriter()
    changed_any = False
    for _ in range(max_iterations):
        changed_this_sweep = False
        for op in list(root.walk()):
            if op is not root and not root.is_ancestor_of(op):
                continue  # detached by an earlier rewrite this sweep
            for pattern in patterns:
                if pattern.op_name is not None and op.name != pattern.op_name:
                    continue
                if op is not root:
                    rewriter.set_insertion_point(InsertionPoint.before(op))
                if pattern.match_and_rewrite(op, rewriter):
                    changed_this_sweep = True
                    changed_any = True
                    break  # op may be gone; move to the next worklist entry
        if not changed_this_sweep:
            return changed_any
    raise RuntimeError(
        f"pattern rewriting did not converge in {max_iterations} sweeps"
    )
