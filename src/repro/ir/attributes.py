"""Compile-time attributes.

Attributes carry the static properties of operations: constants, flags,
names — and, centrally for this reproduction, the *stencil pattern* of
``cfd.stencilOp``, stored as a :class:`DenseIntElementsAttr` whose entries
are -1 (the ``L`` subset), 0 (unused) or 1 (the ``U`` subset).

Like types, attributes are immutable value objects with structural
equality, so they can be freely shared between operations.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from repro.ir.types import Type, f64, i64, index as index_type


class Attribute:
    """Base class of all attributes."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return str(self)


class IntegerAttr(Attribute):
    """An integer constant with an associated integer (or index) type."""

    def __init__(self, value: int, type: Type = i64) -> None:
        self.value = int(value)
        self.type = type

    def _key(self) -> tuple:
        return (self.value, self.type)

    def __str__(self) -> str:
        return f"{self.value} : {self.type}"


class FloatAttr(Attribute):
    """A floating-point constant with an associated float type."""

    def __init__(self, value: float, type: Type = f64) -> None:
        self.value = float(value)
        self.type = type

    def _key(self) -> tuple:
        return (self.value, self.type)

    def __str__(self) -> str:
        return f"{self.value!r} : {self.type}"


class BoolAttr(Attribute):
    """A boolean flag (printed ``true`` / ``false``)."""

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def _key(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        return "true" if self.value else "false"


class StringAttr(Attribute):
    """A string, e.g. a function name."""

    def __init__(self, value: str) -> None:
        self.value = str(value)

    def _key(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'


class ArrayAttr(Attribute):
    """An ordered list of attributes."""

    def __init__(self, elements: Sequence[Attribute]) -> None:
        self.elements: Tuple[Attribute, ...] = tuple(elements)
        for e in self.elements:
            if not isinstance(e, Attribute):
                raise TypeError(f"ArrayAttr element {e!r} is not an Attribute")

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __getitem__(self, i: int) -> Attribute:
        return self.elements[i]

    def _key(self) -> tuple:
        return (self.elements,)

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


class TypeAttr(Attribute):
    """An attribute wrapping a type (e.g. a function signature)."""

    def __init__(self, type: Type) -> None:
        self.type = type

    def _key(self) -> tuple:
        return (self.type,)

    def __str__(self) -> str:
        return str(self.type)


NestedInts = Union[int, Sequence["NestedInts"]]


class DenseIntElementsAttr(Attribute):
    """A dense, possibly multi-dimensional array of integers.

    This is the storage for stencil-pattern attributes: a rank-k pattern of
    extent ``(2*s_1+1) x ... x (2*s_k+1)`` with values in {-1, 0, 1}. The
    nested-list structure is preserved so patterns print the way the paper
    writes them, e.g. ``dense<[[0,-1,0],[-1,0,1],[0,1,0]]>``.
    """

    def __init__(self, values: NestedInts) -> None:
        self.shape = _infer_shape(values)
        self.values = _freeze(values)

    def to_nested_lists(self) -> NestedInts:
        """Return the values as plain nested Python lists."""
        return _thaw(self.values)

    def flat(self) -> Tuple[int, ...]:
        """All values, flattened in row-major order."""
        out: list = []
        _flatten(self.values, out)
        return tuple(out)

    def _key(self) -> tuple:
        return (self.shape, self.values)

    def __str__(self) -> str:
        return f"dense<{_render(self.values)}>"


def _infer_shape(values: NestedInts) -> Tuple[int, ...]:
    if isinstance(values, int):
        return ()
    values = list(values)
    if not values:
        return (0,)
    sub = _infer_shape(values[0])
    for v in values[1:]:
        if _infer_shape(v) != sub:
            raise ValueError("ragged nested list in DenseIntElementsAttr")
    return (len(values),) + sub


def _freeze(values: NestedInts):
    if isinstance(values, int):
        return int(values)
    return tuple(_freeze(v) for v in values)


def _thaw(values):
    if isinstance(values, int):
        return values
    return [_thaw(v) for v in values]


def _flatten(values, out: list) -> None:
    if isinstance(values, int):
        out.append(values)
        return
    for v in values:
        _flatten(v, out)


def _render(values) -> str:
    if isinstance(values, int):
        return str(values)
    return "[" + ", ".join(_render(v) for v in values) + "]"


def int_attr(value: int) -> IntegerAttr:
    """Shorthand for an i64 IntegerAttr."""
    return IntegerAttr(value, i64)


def index_attr(value: int) -> IntegerAttr:
    """Shorthand for an index-typed IntegerAttr."""
    return IntegerAttr(value, index_type)


def bool_attr(value: bool) -> BoolAttr:
    return BoolAttr(value)


def index_array_attr(values: Sequence[int]) -> ArrayAttr:
    """An ArrayAttr of index-typed integers (tile sizes, offsets...)."""
    return ArrayAttr([index_attr(v) for v in values])
