"""A forward (execution-order) dataflow walk over operations.

:meth:`Operation.walk` yields ops in nesting order, which is fine for
attribute audits but wrong for dataflow analyses: those need to visit a
loop body *in the context of* the loop's bounds, possibly several times,
and must be able to bind block arguments before descending. This module
provides the small reusable skeleton: a visitor that dispatches on the
operation name (``visit_scf_for`` for ``scf.for``) and otherwise recurses
into regions in order. Subclasses override the control-flow ops they
model and get every other op through :meth:`before_op`.

The abstract-interpretation engine (:mod:`repro.analysis.absint.engine`)
is the primary client.
"""

from __future__ import annotations

from repro.ir.block import Block
from repro.ir.operation import Operation


def _mangle(name: str) -> str:
    return "visit_" + name.replace(".", "_")


class ForwardDataflowWalker:
    """Visits a block's ops in execution order, recursing into regions.

    Dispatch: ``walk_op`` first looks for a ``visit_<dialect>_<op>``
    method (dots mangled to underscores); absent that it calls
    :meth:`before_op`, recurses into every region's blocks in order, then
    calls :meth:`after_op`. Overridden visitors drive their own region
    traversal (binding block arguments, repeating bodies, skipping dead
    regions) and call :meth:`walk_block` for each pass over a body.
    """

    def walk_block(self, block: Block) -> None:
        for op in list(block.operations):
            self.walk_op(op)

    def walk_op(self, op: Operation) -> None:
        visitor = getattr(self, _mangle(op.name), None)
        if visitor is not None:
            visitor(op)
            return
        self.generic_visit(op)

    def generic_visit(self, op: Operation) -> None:
        self.before_op(op)
        for region in op.regions:
            for block in region.blocks:
                self.walk_block(block)
        self.after_op(op)

    # ---- hooks -----------------------------------------------------------

    def before_op(self, op: Operation) -> None:
        """Called for every op (before descending into its regions)."""

    def after_op(self, op: Operation) -> None:
        """Called after an op's regions have been visited."""
