"""The top-level module operation.

A :class:`ModuleOp` is an operation holding one region with one block, in
which functions (and any other top-level ops) live. It is the unit that
passes, the printer, the parser and the verifier operate on.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.block import Block, Region
from repro.ir.operation import Operation, register_op


@register_op
class ModuleOp(Operation):
    """Top-level container: ``module { ... }``."""

    OP_NAME = "builtin.module"

    @classmethod
    def create(cls) -> "ModuleOp":
        op = Operation.__new__(cls)
        Operation.__init__(op, cls.OP_NAME, regions=[Region([Block()])])
        return op

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def ops(self) -> Iterator[Operation]:
        return iter(self.body.operations)

    def lookup_symbol(self, name: str) -> Optional[Operation]:
        """Find a top-level op whose ``sym_name`` attribute equals ``name``."""
        from repro.ir.attributes import StringAttr

        for op in self.body.operations:
            sym = op.attributes.get("sym_name")
            if isinstance(sym, StringAttr) and sym.value == name:
                return op
        return None
