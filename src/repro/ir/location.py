"""Structural locations: naming an operation's place inside a module.

The IR has no source locations (it is built programmatically), so
diagnostics identify operations *structurally*: the chain of ancestor
operations with region/block/op indices, e.g.::

    module/func.func[sym=kernel]/r0/b0/op2:cfd.tiled_loop/r0/b0/op14:cfd.stencilOp

Used by the verifier (:mod:`repro.ir.verifier`) and the static analyzer
(:mod:`repro.analysis`) to anchor error messages, together with a short
printed excerpt of the offending op.
"""

from __future__ import annotations

from repro.ir.attributes import StringAttr
from repro.ir.operation import Operation
from repro.ir.printer import print_op


def _segment(op: Operation) -> str:
    """One path segment: positional indices plus the op name (and symbol)."""
    sym = op.attributes.get("sym_name")
    label = op.name
    if isinstance(sym, StringAttr):
        label += f"[sym={sym.value}]"
    block = op.parent
    if block is None:
        return label
    region = block.parent
    parent_op = region.parent if region is not None else None
    try:
        op_idx = block.index_of(op)
    except ValueError:  # detached op
        return label
    if region is None or parent_op is None:
        return f"op{op_idx}:{label}"
    block_idx = next(
        (i for i, b in enumerate(region.blocks) if b is block), 0
    )
    region_idx = next(
        (i for i, r in enumerate(parent_op.regions) if r is region), 0
    )
    return f"r{region_idx}/b{block_idx}/op{op_idx}:{label}"


def op_path(op: Operation) -> str:
    """The region/block path of ``op`` from the enclosing module root."""
    segments = []
    current: Operation = op
    while current is not None:
        segments.append(_segment(current))
        current = current.parent_op()
    return "/".join(reversed(segments))


def op_excerpt(op: Operation, max_lines: int = 8) -> str:
    """A short printed-IR excerpt of ``op`` (truncated for large bodies)."""
    try:
        text = print_op(op)
    except Exception:  # printing must never mask the original error
        return repr(op)
    lines = text.rstrip("\n").splitlines()
    if len(lines) > max_lines:
        head = max_lines - 1
        lines = lines[:head] + [f"... ({len(lines) - head} more lines)"]
    return "\n".join(lines)
