"""Blocks and regions.

A :class:`Region` is an ordered list of :class:`Block`s attached to an
operation; a block is an ordered list of operations plus a list of typed
block arguments (the functional-SSA replacement for PHI nodes). All the
IR in this reproduction is structured — control flow is expressed with
``scf`` region-carrying ops — so regions practically hold a single block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from repro.ir.types import Type
from repro.ir.values import BlockArgument

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.operation import Operation


class Block:
    """A straight-line sequence of operations with block arguments."""

    def __init__(self, arg_types: Sequence[Type] = ()) -> None:
        self.arguments: List[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self.operations: List["Operation"] = []
        #: The region containing this block, if inserted.
        self.parent: Optional["Region"] = None

    # ---- arguments ------------------------------------------------------

    def add_argument(self, type: Type) -> BlockArgument:
        arg = BlockArgument(type, self, len(self.arguments))
        self.arguments.append(arg)
        return arg

    def erase_argument(self, index: int) -> None:
        arg = self.arguments[index]
        if arg.has_uses:
            raise ValueError(f"cannot erase block argument #{index}: still used")
        del self.arguments[index]
        for i, a in enumerate(self.arguments):
            a.index = i

    # ---- operations -----------------------------------------------------

    def append(self, op: "Operation") -> "Operation":
        if op.parent is not None:
            raise ValueError(f"{op.name} is already inserted in a block")
        op.parent = self
        self.operations.append(op)
        return op

    def insert(self, index: int, op: "Operation") -> "Operation":
        if op.parent is not None:
            raise ValueError(f"{op.name} is already inserted in a block")
        op.parent = self
        self.operations.insert(index, op)
        return op

    def insert_before(self, anchor: "Operation", op: "Operation") -> "Operation":
        return self.insert(self.index_of(anchor), op)

    def insert_after(self, anchor: "Operation", op: "Operation") -> "Operation":
        return self.insert(self.index_of(anchor) + 1, op)

    def remove_op(self, op: "Operation") -> None:
        self.operations.remove(op)
        op.parent = None

    def index_of(self, op: "Operation") -> int:
        for i, o in enumerate(self.operations):
            if o is op:
                return i
        raise ValueError(f"{op.name} is not in this block")

    @property
    def terminator(self) -> Optional["Operation"]:
        """The last operation, by convention the terminator (if any)."""
        return self.operations[-1] if self.operations else None

    def __iter__(self) -> Iterator["Operation"]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)


class Region:
    """An ordered list of blocks owned by an operation."""

    def __init__(self, blocks: Sequence[Block] = ()) -> None:
        self.blocks: List[Block] = []
        #: The operation owning this region, if attached.
        self.parent: Optional["Operation"] = None
        for b in blocks:
            self.append_block(b)

    def append_block(self, block: Block) -> Block:
        if block.parent is not None:
            raise ValueError("block is already inserted in a region")
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def entry_block(self) -> Block:
        if not self.blocks:
            raise ValueError("region has no blocks")
        return self.blocks[0]

    @property
    def empty(self) -> bool:
        return not self.blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


def single_block_region(arg_types: Sequence[Type] = ()) -> Region:
    """Create a region holding one empty block with the given arguments."""
    return Region([Block(arg_types=arg_types)])
