"""Schedule timestamps and linear index forms for translation validation.

The translation validator (:mod:`repro.analysis.tv`) assigns every
statement instance a *timestamp*: a tuple of ``(flag, value)`` components
compared lexicographically, where ``flag`` is :data:`SEQ` for sequential
components (loop iteration numbers, positions of ops inside a block,
wavefront group numbers) and :data:`PAR` for parallel components (the
tile index inside a wavefront group, the lane of a vector write). Two
timestamps whose first differing component is parallel are *concurrent*
— neither happens-before the other.

This module also recovers *linear index forms*: an index-typed SSA value
expressed as ``const + sum(coeff * iv)`` over the induction variables of
an enclosing loop nest, which is how the validator maps a lowered
``tensor.insert``/``memref.store``/``vector.transfer_write`` back to the
cell it writes. The recovery is purely structural over ``arith``
add/sub/mul chains; everything else is delegated to an evaluator
callback (in practice :meth:`AbstractEvaluator.eval_exact
<repro.analysis.absint.engine.AbstractEvaluator.eval_exact>` with the
enclosing tile's induction variables pinned to concrete points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.ir.values import OpResult, Value

#: Timestamp component flags.
SEQ = 0  #: sequential: ordered by component value
PAR = 1  #: parallel: equal-prefix instances are concurrent

#: One timestamp: ``((flag, value), ...)`` compared lexicographically.
Timestamp = Tuple[Tuple[int, int], ...]

#: :func:`compare_timestamps` verdicts.
BEFORE, CONCURRENT, AFTER = -1, 0, 1


def compare_timestamps(a: Timestamp, b: Timestamp) -> int:
    """Happens-before comparison of two timestamps.

    Returns :data:`BEFORE` (-1) when ``a`` is scheduled strictly before
    ``b``, :data:`AFTER` (1) for the converse, and :data:`CONCURRENT` (0)
    when the first differing component is parallel (or the timestamps are
    equal / one is a prefix of the other, which only happens for distinct
    instances mapped to the same event — also unordered).
    """
    for (fa, va), (fb, vb) in zip(a, b):
        if fa == fb and va == vb:
            continue
        if fa == SEQ and fb == SEQ:
            return BEFORE if va < vb else AFTER
        return CONCURRENT
    return CONCURRENT


def render_timestamp(ts: Timestamp) -> str:
    """Compact human form, e.g. ``s0.p7.s1.s5`` (s=sequential, p=parallel)."""
    return ".".join(f"{'sp'[flag]}{value}" for flag, value in ts) or "<empty>"


@dataclass
class LinearForm:
    """``const + sum(coeffs[id(iv)] * iv)`` over loop induction variables."""

    const: int = 0
    coeffs: Dict[int, int] = field(default_factory=dict)

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def value_at(self, env: Dict[int, int]) -> int:
        """Evaluate under concrete induction-variable bindings
        (``id(iv) -> int``). Raises ``KeyError`` on an unbound variable."""
        return self.const + sum(c * env[k] for k, c in self.coeffs.items())

    def _merge(self, other: "LinearForm", sign: int) -> "LinearForm":
        coeffs = dict(self.coeffs)
        for k, c in other.coeffs.items():
            coeffs[k] = coeffs.get(k, 0) + sign * c
            if coeffs[k] == 0:
                del coeffs[k]
        return LinearForm(self.const + sign * other.const, coeffs)

    def scaled(self, factor: int) -> "LinearForm":
        return LinearForm(
            self.const * factor,
            {k: c * factor for k, c in self.coeffs.items()},
        )


def resolve_linear(
    value: Value,
    iv_ids: Dict[int, Value],
    evaluate: Callable[[Value], Optional[int]],
) -> Optional[LinearForm]:
    """Recover ``value`` as a :class:`LinearForm` over the induction
    variables in ``iv_ids`` (``id(iv) -> iv``).

    Structural recursion over ``arith.addi``/``subi``/``muli`` (one
    multiplicand must be loop-invariant); any other sub-expression must
    evaluate to a concrete integer via ``evaluate`` or the recovery fails
    with ``None``. This shape covers every index expression our lowerings
    emit: forward ``lo + iv``, backward ``(hi - 1) - iv``, vector strips
    ``lo + vf * t`` and ``(hi - vf) - vf * t``, and unrolled lanes
    ``j0 + u``.
    """
    if id(value) in iv_ids:
        return LinearForm(0, {id(value): 1})
    if isinstance(value, OpResult):
        op = value.op
        if op.name in ("arith.addi", "arith.subi") and op.num_operands == 2:
            lhs = resolve_linear(op.operand(0), iv_ids, evaluate)
            rhs = resolve_linear(op.operand(1), iv_ids, evaluate)
            if lhs is None or rhs is None:
                return None
            return lhs._merge(rhs, 1 if op.name == "arith.addi" else -1)
        if op.name == "arith.muli" and op.num_operands == 2:
            lhs = resolve_linear(op.operand(0), iv_ids, evaluate)
            rhs = resolve_linear(op.operand(1), iv_ids, evaluate)
            if lhs is None or rhs is None:
                return None
            if rhs.is_const:
                return lhs.scaled(rhs.const)
            if lhs.is_const:
                return rhs.scaled(lhs.const)
            return None
        if op.name == "arith.index_cast":
            return resolve_linear(op.operand(0), iv_ids, evaluate)
    c = evaluate(value)
    if c is None:
        return None
    return LinearForm(c, {})
