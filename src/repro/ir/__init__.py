"""A pure-Python mini-MLIR: the IR substrate of the reproduction.

This package reimplements the subset of MLIR's core IR concepts that the
paper's code generator relies on:

* a type system (``types``): index, integers, floats, tensors, memrefs and
  vectors;
* compile-time attributes (``attributes``): scalars, arrays, strings, types
  and dense integer elements (used for stencil patterns);
* SSA values, operations, blocks and regions (``values``, ``operation``,
  ``block``) with full use-def chains;
* an operation builder with insertion points (``builder``);
* a textual printer and parser with round-trip guarantees (``printer``,
  ``parser``);
* a structural verifier (``verifier``);
* a pattern-rewrite driver and a pass manager (``rewriter``,
  ``pass_manager``).

The design deliberately mirrors MLIR: operations are the only unit of
semantics, regions attach to operations, blocks use block arguments instead
of PHI nodes, and dialects register operation classes against a global
registry keyed by the dotted operation name.
"""

from repro.ir.types import (
    Type,
    IndexType,
    IntegerType,
    F32Type,
    F64Type,
    ShapedType,
    TensorType,
    MemRefType,
    VectorType,
    FunctionType,
    NoneType,
    index,
    i1,
    i32,
    i64,
    f32,
    f64,
)
from repro.ir.attributes import (
    Attribute,
    IntegerAttr,
    FloatAttr,
    BoolAttr,
    StringAttr,
    ArrayAttr,
    DenseIntElementsAttr,
    TypeAttr,
)
from repro.ir.values import Value, OpResult, BlockArgument
from repro.ir.operation import Operation, OpRegistry, register_op
from repro.ir.block import Block, Region
from repro.ir.builder import OpBuilder, InsertionPoint
from repro.ir.module import ModuleOp
from repro.ir.printer import print_module, print_op
from repro.ir.parser import parse_module, IRParseError
from repro.ir.verifier import verify, IRVerificationError
from repro.ir.rewriter import RewritePattern, PatternRewriter, apply_patterns_greedily
from repro.ir.pass_manager import Pass, PassManager
from repro.ir.dataflow import ForwardDataflowWalker

__all__ = [
    "Type",
    "IndexType",
    "IntegerType",
    "F32Type",
    "F64Type",
    "ShapedType",
    "TensorType",
    "MemRefType",
    "VectorType",
    "FunctionType",
    "NoneType",
    "index",
    "i1",
    "i32",
    "i64",
    "f32",
    "f64",
    "Attribute",
    "IntegerAttr",
    "FloatAttr",
    "BoolAttr",
    "StringAttr",
    "ArrayAttr",
    "DenseIntElementsAttr",
    "TypeAttr",
    "Value",
    "OpResult",
    "BlockArgument",
    "Operation",
    "OpRegistry",
    "register_op",
    "Block",
    "Region",
    "OpBuilder",
    "InsertionPoint",
    "ModuleOp",
    "print_module",
    "print_op",
    "parse_module",
    "IRParseError",
    "verify",
    "IRVerificationError",
    "RewritePattern",
    "PatternRewriter",
    "apply_patterns_greedily",
    "Pass",
    "PassManager",
    "ForwardDataflowWalker",
]
