"""The operation builder.

:class:`OpBuilder` creates operations at an :class:`InsertionPoint` (a
block plus a position inside it). Builders are how every pass and every
frontend in this reproduction constructs IR; they guarantee new ops land
in a block so the use-def machinery stays coherent.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence

from repro.ir.attributes import Attribute
from repro.ir.block import Block, Region
from repro.ir.operation import Operation, create_operation
from repro.ir.types import Type
from repro.ir.values import Value


class InsertionPoint:
    """A position inside a block: new ops are inserted *before* ``index``.

    ``index=None`` means "at the end of the block".
    """

    def __init__(self, block: Block, index: Optional[int] = None) -> None:
        self.block = block
        self.index = index

    @classmethod
    def at_end(cls, block: Block) -> "InsertionPoint":
        return cls(block, None)

    @classmethod
    def at_start(cls, block: Block) -> "InsertionPoint":
        return cls(block, 0)

    @classmethod
    def before(cls, op: Operation) -> "InsertionPoint":
        if op.parent is None:
            raise ValueError("operation is not inserted in a block")
        return cls(op.parent, op.parent.index_of(op))

    @classmethod
    def after(cls, op: Operation) -> "InsertionPoint":
        if op.parent is None:
            raise ValueError("operation is not inserted in a block")
        return cls(op.parent, op.parent.index_of(op) + 1)

    def insert(self, op: Operation) -> Operation:
        if self.index is None:
            self.block.append(op)
        else:
            self.block.insert(self.index, op)
            self.index += 1
        return op


class OpBuilder:
    """Creates operations at the current insertion point.

    Typical usage::

        builder = OpBuilder.at_end(block)
        c = arith.ConstantOp.build(builder, FloatAttr(1.0))
        s = arith.AddFOp.build(builder, c.result(), x)
    """

    def __init__(self, insertion_point: Optional[InsertionPoint] = None) -> None:
        self.insertion_point = insertion_point

    @classmethod
    def at_end(cls, block: Block) -> "OpBuilder":
        return cls(InsertionPoint.at_end(block))

    @classmethod
    def at_start(cls, block: Block) -> "OpBuilder":
        return cls(InsertionPoint.at_start(block))

    @classmethod
    def before(cls, op: Operation) -> "OpBuilder":
        return cls(InsertionPoint.before(op))

    @classmethod
    def after(cls, op: Operation) -> "OpBuilder":
        return cls(InsertionPoint.after(op))

    def set_insertion_point(self, ip: InsertionPoint) -> None:
        self.insertion_point = ip

    @contextmanager
    def at(self, ip: InsertionPoint) -> Iterator["OpBuilder"]:
        """Temporarily move the insertion point."""
        saved = self.insertion_point
        self.insertion_point = ip
        try:
            yield self
        finally:
            self.insertion_point = saved

    def insert(self, op: Operation) -> Operation:
        if self.insertion_point is None:
            raise ValueError("builder has no insertion point")
        return self.insertion_point.insert(op)

    def create(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, Attribute]] = None,
        regions: Sequence[Region] = (),
    ) -> Operation:
        """Create a (registered or generic) op and insert it."""
        op = create_operation(name, operands, result_types, attributes, regions)
        return self.insert(op)
