"""Tile-size autotuning (§2.1).

The search space is the set of per-dimension power-of-two-ish tile sizes
whose working-set footprint — tile volume x ``nbVar`` x live tensors x 8
bytes — fits in the private cache capacity (L2 on mainstream CPUs, 1 MiB
on the paper's Xeon 6152). Sizes along dimensions carrying negative
dependence distances are pinned to 1 by the legalizer before costing.

Two costing modes:

* **measured** — compile and time each candidate on a given workload
  factory (what the paper does; used by the Table 2 bench);
* **static** — the static performance prover
  (:mod:`repro.analysis.perf`): predicted seconds per sweep from the
  exact affine footprints, the machine model's roofline terms and the
  per-tile/per-vector-call overheads. This replaced the PR-seed ad-hoc
  closed-form cost; the prediction-accuracy bench
  (``benchmarks/test_pr8_static_cost.py``) audits that it ranks
  candidates the way measured runtimes do.

The machine model defaults to :func:`resolve_machine_model` — pin
``REPRO_MACHINE`` (or pass ``machine=``) to make rankings deterministic
across hosts.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.stencil import StencilPattern
from repro.core.tiling import legalize_tile_sizes, tile_footprint_bytes
from repro.machine.model import MachineModel, resolve_machine_model


@dataclass
class TuneResult:
    tile_sizes: Tuple[int, ...]
    cost: float
    candidates_tried: int
    #: (sizes, cost) per evaluated candidate, for the Table 2/3 benches.
    trace: List[Tuple[Tuple[int, ...], float]]


def _resolve(machine: Union[MachineModel, str, None]) -> MachineModel:
    if isinstance(machine, MachineModel):
        return machine
    return resolve_machine_model(machine)


def candidate_tile_sizes(
    pattern: StencilPattern,
    space_shape: Sequence[int],
    nb_var: int = 1,
    cache_bytes: Optional[int] = None,
    live_tensors: int = 3,
    size_pool: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    machine: Union[MachineModel, str, None] = None,
) -> List[Tuple[int, ...]]:
    """All legalized size vectors within the cache-capacity bound
    (``cache_bytes`` defaults to the machine model's private L2)."""
    if cache_bytes is None:
        cache_bytes = _resolve(machine).l2_bytes
    pools = []
    for d, n in enumerate(space_shape):
        pools.append([s for s in size_pool if s <= max(1, n)])
    seen = set()
    out: List[Tuple[int, ...]] = []
    for combo in itertools.product(*pools):
        legal = tuple(legalize_tile_sizes(pattern, combo))
        if legal in seen:
            continue
        seen.add(legal)
        if (
            tile_footprint_bytes(legal, nb_var, live_tensors)
            <= cache_bytes
        ):
            out.append(legal)
    return out


def static_cost(
    tile_sizes: Sequence[int],
    pattern: StencilPattern,
    space_shape: Sequence[int],
    nb_var: int = 1,
    vf: int = 8,
    machine: Union[MachineModel, str, None] = None,
) -> float:
    """Predicted seconds per sweep from the static performance prover
    (imported lazily: ``repro.analysis`` depends on core modules)."""
    from repro.analysis.perf import static_cost as prover_cost

    return prover_cost(
        pattern,
        space_shape,
        tile_sizes,
        nb_var=nb_var,
        machine=_resolve(machine),
        vf=vf,
    )


def autotune(
    pattern: StencilPattern,
    space_shape: Sequence[int],
    nb_var: int = 1,
    cache_bytes: Optional[int] = None,
    measure: Optional[Callable[[Tuple[int, ...]], float]] = None,
    vf: int = 8,
    max_candidates: Optional[int] = None,
    machine: Union[MachineModel, str, None] = None,
) -> TuneResult:
    """Pick tile sizes: measured when ``measure`` is given, statically
    priced otherwise.

    ``measure`` maps a size vector to a time (seconds); the tuner
    minimizes it. Candidates are pre-sorted by the static cost so a
    truncated search (``max_candidates``) still looks at the most
    promising sizes. Both modes minimize *seconds*, so their rankings
    are directly comparable (the PR 8 acceptance criterion).
    """
    resolved = _resolve(machine)
    candidates = candidate_tile_sizes(
        pattern, space_shape, nb_var, cache_bytes, machine=resolved
    )
    if not candidates:
        raise ValueError("no tile sizes fit the cache-capacity bound")
    costs = {
        sizes: static_cost(
            sizes, pattern, space_shape, nb_var, vf, machine=resolved
        )
        for sizes in candidates
    }
    candidates.sort(key=costs.__getitem__)
    if max_candidates is not None:
        candidates = candidates[:max_candidates]
    trace: List[Tuple[Tuple[int, ...], float]] = []
    best: Tuple[int, ...] = candidates[0]
    best_cost = float("inf")
    for sizes in candidates:
        cost = measure(sizes) if measure is not None else costs[sizes]
        trace.append((sizes, cost))
        if cost < best_cost:
            best, best_cost = sizes, cost
    return TuneResult(best, best_cost, len(trace), trace)


def timed_measure(
    kernel_factory: Callable[[Tuple[int, ...]], Callable[[], None]],
    repeats: int = 3,
) -> Callable[[Tuple[int, ...]], float]:
    """Wrap a kernel factory into a best-of-N timing function."""

    def measure(sizes: Tuple[int, ...]) -> float:
        run = kernel_factory(sizes)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        return best

    return measure
