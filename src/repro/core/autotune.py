"""Tile-size autotuning (§2.1).

The search space is the set of per-dimension power-of-two-ish tile sizes
whose working-set footprint — tile volume x ``nbVar`` x live tensors x 8
bytes — fits in the private cache capacity (L2 on mainstream CPUs, 1 MiB
on the paper's Xeon 6152). Sizes along dimensions carrying negative
dependence distances are pinned to 1 by the legalizer before costing.

Two costing modes:

* **measured** — compile and time each candidate on a given workload
  factory (what the paper does; used by the Table 2 bench);
* **model** — a closed-form cost favoring long innermost tiles (vector
  efficiency) and low surface-to-volume ratio (halo overhead), used when
  measuring is too expensive.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.stencil import StencilPattern
from repro.core.tiling import legalize_tile_sizes, tile_footprint_bytes


@dataclass
class TuneResult:
    tile_sizes: Tuple[int, ...]
    cost: float
    candidates_tried: int
    #: (sizes, cost) per evaluated candidate, for the Table 2/3 benches.
    trace: List[Tuple[Tuple[int, ...], float]]


def candidate_tile_sizes(
    pattern: StencilPattern,
    space_shape: Sequence[int],
    nb_var: int = 1,
    cache_bytes: int = 1 << 20,
    live_tensors: int = 3,
    size_pool: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
) -> List[Tuple[int, ...]]:
    """All legalized size vectors within the cache-capacity bound."""
    pools = []
    for d, n in enumerate(space_shape):
        pools.append([s for s in size_pool if s <= max(1, n)])
    seen = set()
    out: List[Tuple[int, ...]] = []
    for combo in itertools.product(*pools):
        legal = tuple(legalize_tile_sizes(pattern, combo))
        if legal in seen:
            continue
        seen.add(legal)
        if (
            tile_footprint_bytes(legal, nb_var, live_tensors)
            <= cache_bytes
        ):
            out.append(legal)
    return out


def model_cost(
    tile_sizes: Sequence[int],
    pattern: StencilPattern,
    vf: int = 8,
    alpha_halo: float = 1.0,
    alpha_vector: float = 4.0,
) -> float:
    """A simple analytic cost per interior element.

    * halo overhead: recomputation/loads grow with the surface-to-volume
      ratio, weighted by the pattern halo;
    * vector efficiency: innermost extents that are not multiples of VF
      pay the peeled-scalar penalty for the remainder fraction.
    """
    volume = 1
    for t in tile_sizes:
        volume *= t
    halos = []
    for d in range(pattern.rank):
        lo = max([0] + [-o[d] for o, _ in pattern.accesses])
        hi = max([0] + [o[d] for o, _ in pattern.accesses])
        halos.append(lo + hi)
    surface = 0.0
    for d, t in enumerate(tile_sizes):
        inflated = 1.0
        for e, s in enumerate(tile_sizes):
            inflated *= (s + halos[e]) if e == d else s
        surface += inflated - volume
    halo_term = alpha_halo * surface / volume
    inner = tile_sizes[-1]
    remainder = inner % vf
    vector_term = alpha_vector * (remainder / inner if inner else 1.0)
    return 1.0 + halo_term + vector_term


def autotune(
    pattern: StencilPattern,
    space_shape: Sequence[int],
    nb_var: int = 1,
    cache_bytes: int = 1 << 20,
    measure: Optional[Callable[[Tuple[int, ...]], float]] = None,
    vf: int = 8,
    max_candidates: Optional[int] = None,
) -> TuneResult:
    """Pick tile sizes: measured when ``measure`` is given, modeled
    otherwise.

    ``measure`` maps a size vector to a time (seconds); the tuner
    minimizes it. Candidates are pre-sorted by the model so a truncated
    search (``max_candidates``) still looks at the most promising sizes.
    """
    candidates = candidate_tile_sizes(
        pattern, space_shape, nb_var, cache_bytes
    )
    if not candidates:
        raise ValueError("no tile sizes fit the cache-capacity bound")
    candidates.sort(key=lambda c: model_cost(c, pattern, vf))
    if max_candidates is not None:
        candidates = candidates[:max_candidates]
    trace: List[Tuple[Tuple[int, ...], float]] = []
    best: Tuple[int, ...] = candidates[0]
    best_cost = float("inf")
    for sizes in candidates:
        cost = (
            measure(sizes)
            if measure is not None
            else model_cost(sizes, pattern, vf)
        )
        trace.append((sizes, cost))
        if cost < best_cost:
            best, best_cost = sizes, cost
    return TuneResult(best, best_cost, len(trace), trace)


def timed_measure(
    kernel_factory: Callable[[Tuple[int, ...]], Callable[[], None]],
    repeats: int = 3,
) -> Callable[[Tuple[int, ...]], float]:
    """Wrap a kernel factory into a best-of-N timing function."""

    def measure(sizes: Tuple[int, ...]) -> float:
        run = kernel_factory(sizes)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        return best

    return measure
