"""Sub-domain wavefront scheduling (§2.3, §3.4).

Given the grid of sub-domains and the block-level dependence offsets
derived from the ``L`` subset of the stencil pattern, this module computes
the longest-path schedule of Eq. (3)::

    theta(s) = max_r theta(s + r) + 1

(executed in the sweep-directed lexicographic order of sub-domain
coordinates), groups sub-domains with equal ``theta`` into parallel
wavefronts, and encodes the groups in CSR form — exactly the payload of
``cfd.get_parallel_blocks``.

The module also implements the *affine* alternative discussed in §5
("Affine Scheduling"): a linear schedule ``theta(s) = n . s`` with
``-n . r >= 1`` for every dependence offset ``r``, found by bounded
integer search and compared against the graph schedule in an ablation
benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

Offset = Tuple[int, ...]


def longest_path_schedule(
    num_blocks: Sequence[int], block_offsets: Iterable[Offset]
) -> np.ndarray:
    """Eq. (3): the optimal-latency schedule of the sub-domain graph.

    ``block_offsets`` point at *predecessors*: sub-domain ``s`` depends on
    ``s + r`` for every offset ``r`` (with ``s + r`` inside the grid).
    Offsets must all be lexicographically negative or all positive (the
    forward/backward sweep cases); the blocks are processed in the
    corresponding topological order.

    Returns an integer array of shape ``num_blocks`` with ``theta`` per
    sub-domain; complexity O(n_blocks * |L|) as discussed in §2.3.
    """
    num_blocks = tuple(int(n) for n in num_blocks)
    offsets = [tuple(int(c) for c in o) for o in block_offsets]
    for o in offsets:
        if len(o) != len(num_blocks):
            raise ValueError(f"offset {o} rank != grid rank {len(num_blocks)}")
        if all(c == 0 for c in o):
            raise ValueError("a sub-domain cannot depend on itself")
    direction = _sweep_direction(offsets)
    theta = np.zeros(num_blocks, dtype=np.int64)
    indices = itertools.product(*(range(n) for n in num_blocks))
    if direction < 0:
        indices = itertools.product(*(range(n - 1, -1, -1) for n in num_blocks))
    for s in indices:
        best = 0
        for r in offsets:
            p = tuple(si + ri for si, ri in zip(s, r))
            if all(0 <= pi < ni for pi, ni in zip(p, num_blocks)):
                candidate = theta[p] + 1
                if candidate > best:
                    best = candidate
        theta[s] = best
    return theta


def _sweep_direction(offsets: List[Offset]) -> int:
    """+1 when all offsets are lexicographically negative, -1 when all
    positive (empty offset lists default to forward)."""

    def lex_sign(o: Offset) -> int:
        for c in o:
            if c:
                return -1 if c < 0 else 1
        return 0

    signs = {lex_sign(o) for o in offsets}
    if not signs:
        return 1
    if signs == {-1}:
        return 1
    if signs == {1}:
        return -1
    raise ValueError(
        "block offsets mix lexicographic directions; no single sweep order "
        f"is a valid schedule: {offsets}"
    )


def wavefront_groups(theta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Group sub-domains by schedule value into CSR wavefronts.

    Returns ``(offsets, indices)``: group ``g`` is
    ``indices[offsets[g] : offsets[g+1]]``, each entry a row-major
    linearized sub-domain index. Groups are ordered by increasing
    ``theta``; all sub-domains in a group are mutually independent.
    """
    flat = theta.reshape(-1)
    order = np.argsort(flat, kind="stable")
    sorted_theta = flat[order]
    # Group boundaries where theta changes.
    boundaries = np.flatnonzero(np.diff(sorted_theta)) + 1
    offsets = np.concatenate(([0], boundaries, [flat.size])).astype(np.int64)
    return offsets, order.astype(np.int64)


def compute_parallel_blocks(
    num_blocks: Sequence[int], block_offsets: Iterable[Offset]
) -> Tuple[np.ndarray, np.ndarray]:
    """The full ``cfd.get_parallel_blocks`` computation: Eq. (3) + CSR."""
    theta = longest_path_schedule(num_blocks, block_offsets)
    return wavefront_groups(theta)


def validate_schedule(
    num_blocks: Sequence[int],
    block_offsets: Iterable[Offset],
    offsets: np.ndarray,
    indices: np.ndarray,
) -> None:
    """Check a CSR schedule: completeness and dependence-before-use.

    Raises ``ValueError`` on the first violation. Used by property tests
    and by the pipeline's self-check mode.
    """
    num_blocks = tuple(int(n) for n in num_blocks)
    total = int(np.prod(num_blocks))
    indices = np.asarray(indices)
    offsets = np.asarray(offsets)
    if sorted(indices.tolist()) != list(range(total)):
        raise ValueError("schedule does not cover every sub-domain exactly once")
    group_of = np.empty(total, dtype=np.int64)
    for g in range(len(offsets) - 1):
        group_of[indices[offsets[g] : offsets[g + 1]]] = g
    strides = _row_major_strides(num_blocks)
    for linear in range(total):
        s = _delinearize(linear, num_blocks, strides)
        for r in block_offsets:
            p = tuple(si + ri for si, ri in zip(s, r))
            if not all(0 <= pi < ni for pi, ni in zip(p, num_blocks)):
                continue
            p_linear = sum(pi * st for pi, st in zip(p, strides))
            if group_of[p_linear] >= group_of[linear]:
                raise ValueError(
                    f"sub-domain {s} (group {group_of[linear]}) depends on "
                    f"{p} (group {group_of[p_linear]}): not strictly earlier"
                )


def schedule_latency(offsets: np.ndarray) -> int:
    """Number of wavefront groups — the schedule's critical-path length."""
    return len(offsets) - 1


def group_sizes(offsets: np.ndarray) -> List[int]:
    """Sub-domains per wavefront group (the available parallelism)."""
    return list(np.diff(offsets))


def _row_major_strides(shape: Sequence[int]) -> List[int]:
    strides = []
    acc = 1
    for n in reversed(shape):
        strides.insert(0, acc)
        acc *= n
    return strides


def _delinearize(linear: int, shape: Sequence[int], strides: Sequence[int]):
    return tuple((linear // st) % n for st, n in zip(strides, shape))


def delinearize(linear: int, shape: Sequence[int]) -> Tuple[int, ...]:
    """Row-major delinearization of a sub-domain index."""
    return _delinearize(linear, shape, _row_major_strides(shape))


# ---------------------------------------------------------------------------
# Schedule stamping — the compiled artifact carries its wavefront shape.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduleStamp:
    """The statically resolved wavefront schedule of one grouped loop.

    Stamped into :class:`~repro.codegen.executor.CompiledKernel.schedule`
    by the pipeline (and persisted in the disk-cache metadata), so the
    runtime, the benchmarks and the machine-model simulator can read the
    schedule of a compiled artifact without re-deriving it from IR.
    """

    num_blocks: Tuple[int, ...]
    block_offsets: Tuple[Offset, ...]
    group_sizes: Tuple[int, ...]

    @property
    def num_groups(self) -> int:
        return len(self.group_sizes)

    @property
    def total_blocks(self) -> int:
        return sum(self.group_sizes)

    @property
    def max_parallelism(self) -> int:
        return max(self.group_sizes, default=0)

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Recompute the full CSR payload (offsets, indices)."""
        return compute_parallel_blocks(self.num_blocks, self.block_offsets)

    def to_json(self) -> dict:
        return {
            "num_blocks": list(self.num_blocks),
            "block_offsets": [list(o) for o in self.block_offsets],
            "group_sizes": list(self.group_sizes),
        }

    @staticmethod
    def from_json(data: dict) -> "ScheduleStamp":
        return ScheduleStamp(
            num_blocks=tuple(int(n) for n in data["num_blocks"]),
            block_offsets=tuple(
                tuple(int(c) for c in o) for o in data["block_offsets"]
            ),
            group_sizes=tuple(int(s) for s in data["group_sizes"]),
        )


def _eval_static_index(value) -> Optional[int]:
    """Resolve an index SSA value to an integer through the small arith
    subset the tiling pass builds extents from; ``None`` when dynamic."""
    from repro.ir.values import OpResult

    if not isinstance(value, OpResult):
        return None
    op = value.op
    if op.name == "arith.constant":
        return int(op.attributes["value"].value)
    binops = {
        "arith.addi": lambda a, b: a + b,
        "arith.subi": lambda a, b: a - b,
        "arith.muli": lambda a, b: a * b,
        "arith.floordivi": lambda a, b: a // b,
        "arith.remi": lambda a, b: a % b,
        "arith.minsi": min,
        "arith.maxsi": max,
    }
    fn = binops.get(op.name)
    if fn is None:
        return None
    a = _eval_static_index(op.operand(0))
    b = _eval_static_index(op.operand(1))
    if a is None or b is None:
        return None
    return fn(a, b)


def extract_schedule_stamps(module) -> List[ScheduleStamp]:
    """One :class:`ScheduleStamp` per ``cfd.get_parallel_blocks`` op
    whose grid extents are statically resolvable (module order).

    Dynamic extents simply produce no stamp — the runtime schedule is
    still computed by the generated code; only the static metadata is
    unavailable.
    """
    stamps: List[ScheduleStamp] = []
    for op in module.walk():
        if op.name != "cfd.get_parallel_blocks":
            continue
        extents = [
            _eval_static_index(op.operand(i)) for i in range(op.num_operands)
        ]
        if any(e is None for e in extents):
            continue
        offsets_csr, _ = compute_parallel_blocks(extents, op.block_offsets)
        stamps.append(ScheduleStamp(
            num_blocks=tuple(int(e) for e in extents),
            block_offsets=tuple(tuple(o) for o in op.block_offsets),
            group_sizes=tuple(int(s) for s in np.diff(offsets_csr)),
        ))
    return stamps


# ---------------------------------------------------------------------------
# Affine scheduling (§5 "Affine Scheduling") — the ablation alternative.
# ---------------------------------------------------------------------------


def affine_schedule_vector(
    block_offsets: Iterable[Offset],
    num_blocks: Sequence[int],
    max_coefficient: int = 4,
) -> Tuple[int, ...]:
    """Find an integer vector ``n`` with ``-n . r >= 1`` for all offsets,
    minimizing the latency ``max_s n.s - min_s n.s`` over the grid.

    A bounded exhaustive search is sufficient for stencil patterns (the
    offsets are tiny); raises if no vector within the bound works.
    """
    offsets = [tuple(o) for o in block_offsets]
    rank = len(num_blocks)
    if not offsets:
        return tuple([0] * rank)
    best: Tuple[int, ...] = ()
    best_latency = None
    for n in itertools.product(
        range(-max_coefficient, max_coefficient + 1), repeat=rank
    ):
        if all(-sum(ni * ri for ni, ri in zip(n, r)) >= 1 for r in offsets):
            latency = sum(abs(ni) * (nb - 1) for ni, nb in zip(n, num_blocks))
            if best_latency is None or latency < best_latency:
                best_latency = latency
                best = tuple(n)
    if best_latency is None:
        raise ValueError(
            f"no affine schedule with |coefficients| <= {max_coefficient} "
            f"satisfies the dependences {offsets}"
        )
    return best


def affine_schedule(
    num_blocks: Sequence[int], block_offsets: Iterable[Offset]
) -> np.ndarray:
    """Evaluate the best linear schedule over the grid, shifted to start
    at zero. Latency-optimal only "up to a constant" [Darte et al.],
    unlike :func:`longest_path_schedule`."""
    n = affine_schedule_vector(block_offsets, num_blocks)
    grids = np.meshgrid(
        *(np.arange(nb) for nb in num_blocks), indexing="ij"
    )
    theta = sum(ni * g for ni, g in zip(n, grids))
    if np.size(theta) == 0:
        return np.zeros(tuple(num_blocks), dtype=np.int64)
    return (theta - theta.min()).astype(np.int64)
