"""Bufferization: immutable tensors to mutable buffers (§3.3).

The paper lowers ``cfd.tiled_loop`` "to classical (parallel) for loops
after the MLIR bufferization pass that replaces immutable tensors with
mutable buffers". This pass performs that replacement on lowered IR:

* ``tensor.empty`` → ``memref.alloc``; ``extract``/``insert`` →
  ``load``/``store``; ``extract_slice`` → ``subview`` + ``alloc`` +
  ``copy``; ``insert_slice`` → ``subview`` + ``copy``;
* loop-carried tensors disappear: an ``scf.for`` (or ``cfd.tiled_loop``)
  iter-arg chain becomes a single buffer written in place, with a
  ``memref.copy`` only where the chain breaks ownership;
* ``vector.transfer_read/write`` keep their form, now on memrefs.

Copy elision uses the same ownership rule as the NumPy backend: a buffer
may be mutated in place iff its producing value is an op result whose
single remaining use is the mutating op (function arguments are never
mutated, preserving the tensor-level caller contract).

So that the in-place reuse decisions stay auditable after the fact, the
pass stamps every emitted access with the *serial number* of the
tensor-level SSA value it materializes (``absint_reads`` /
``absint_writes``, plus ``absint_parent`` for the value an in-place
update was derived from) and every lowered loop with its carry chain
(``absint_carries``). The :class:`~repro.analysis.absint.memory
.ClobberChecker` replays these stamps against interval footprints to
prove — or refute (IP014/IP015) — that no reuse clobbered a live value.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dialects import cfd, memref, scf, tensor, vector
from repro.ir import Operation, Pass
from repro.ir.attributes import DenseIntElementsAttr, IntegerAttr
from repro.ir.block import Block
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.types import FunctionType, MemRefType, TensorType
from repro.ir.values import OpResult, Value


class BufferizationError(Exception):
    """Raised when the IR contains constructs this pass cannot bufferize."""


def _to_memref(t):
    if isinstance(t, TensorType):
        return MemRefType(t.shape, t.element_type)
    return t


class _Bufferizer:
    def __init__(self) -> None:
        #: old Value -> new Value (memref for tensors, identity otherwise).
        self.mapping: Dict[Value, Value] = {}
        #: ids of new buffer Values this function owns (allocs/copies).
        self.owned: set = set()
        #: id(tensor-level Value) -> stable serial for lineage stamps.
        self._serials: Dict[int, int] = {}

    def _serial(self, value: Value) -> int:
        return self._serials.setdefault(id(value), len(self._serials))

    @staticmethod
    def _stamp(op: Operation, reads: Optional[int] = None,
               writes: Optional[int] = None,
               parent: Optional[int] = None) -> Operation:
        if reads is not None:
            op.attributes["absint_reads"] = IntegerAttr(reads)
        if writes is not None:
            op.attributes["absint_writes"] = IntegerAttr(writes)
        if parent is not None:
            op.attributes["absint_parent"] = IntegerAttr(parent)
        return op

    # ---- ownership -------------------------------------------------------

    def _consume(self, builder: OpBuilder, op: Operation, index: int) -> Value:
        """A buffer the caller may mutate (copying unless provably dead)."""
        old = op.operand(index)
        buf = self.mapping[old]
        if (
            id(buf) in self.owned
            and isinstance(old, OpResult)
            and old.num_uses == 1
            and old.owner_block() is op.parent
        ):
            return buf
        fresh = self._alloc_like(builder, buf)
        s = self._serial(old)
        self._stamp(memref.CopyOp.build(builder, buf, fresh),
                    reads=s, writes=s)
        return fresh

    def _alloc_like(self, builder: OpBuilder, buf: Value) -> Value:
        t: MemRefType = buf.type  # type: ignore[assignment]
        dynamic = [
            memref.MemDimOp.build(builder, buf, d).result()
            for d in range(t.rank)
            if t.shape[d] == -1
        ]
        fresh = memref.AllocOp.build(builder, t, dynamic).result()
        self.owned.add(id(fresh))
        return fresh

    # ---- driver -----------------------------------------------------------

    def bufferize_function(self, fn) -> None:
        old_ft: FunctionType = fn.function_type
        new_ft = FunctionType(
            [_to_memref(t) for t in old_ft.inputs],
            [_to_memref(t) for t in old_ft.results],
        )
        from repro.ir.attributes import TypeAttr

        fn.attributes["function_type"] = TypeAttr(new_ft)
        old_body: Block = fn.body
        new_body = Block(arg_types=new_ft.inputs)
        for old_arg, new_arg in zip(old_body.arguments, new_body.arguments):
            self.mapping[old_arg] = new_arg
        self._emit_block(old_body, new_body)
        region = fn.regions[0]
        region.blocks.clear()
        old_body.parent = None
        region.append_block(new_body)

    def _emit_block(self, old_block: Block, new_block: Block) -> None:
        builder = OpBuilder.at_end(new_block)
        for op in old_block.operations:
            self._emit_op(builder, op)

    # ---- per-op emission --------------------------------------------------

    def _emit_op(self, builder: OpBuilder, op: Operation) -> None:
        name = op.name
        handler = getattr(
            self, "_emit_" + name.replace(".", "_"), None
        )
        if handler is not None:
            handler(builder, op)
            return
        if any(isinstance(o.type, TensorType) for o in op.operands) or any(
            isinstance(r.type, TensorType) for r in op.results
        ):
            raise BufferizationError(f"cannot bufferize {name!r}")
        # Tensor-free op: clone with remapped operands.
        clone = builder.create(
            name,
            [self.mapping.get(o, o) for o in op.operands],
            [r.type for r in op.results],
            dict(op.attributes),
        )
        for old_res, new_res in zip(op.results, clone.results):
            self.mapping[old_res] = new_res

    # tensor ops ------------------------------------------------------------

    def _emit_tensor_empty(self, builder, op) -> None:
        t = _to_memref(op.result().type)
        dynamic = [self.mapping.get(o, o) for o in op.operands]
        buf = memref.AllocOp.build(builder, t, dynamic).result()
        self.owned.add(id(buf))
        self.mapping[op.result()] = buf

    def _emit_tensor_dim(self, builder, op) -> None:
        buf = self.mapping[op.operand(0)]
        new = memref.MemDimOp.build(builder, buf, op.attributes["dim"].value)
        self.mapping[op.result()] = new.result()

    def _emit_tensor_extract(self, builder, op) -> None:
        buf = self.mapping[op.operand(0)]
        idx = [self.mapping.get(o, o) for o in op.operands[1:]]
        load = memref.LoadOp.build(builder, buf, idx)
        self._stamp(load, reads=self._serial(op.operand(0)))
        self.mapping[op.result()] = load.result()

    def _emit_tensor_insert(self, builder, op) -> None:
        buf = self._consume(builder, op, 1)
        idx = [self.mapping.get(o, o) for o in op.operands[2:]]
        store = memref.StoreOp.build(
            builder, self.mapping.get(op.operand(0), op.operand(0)), buf, idx
        )
        self._stamp(store, writes=self._serial(op.result()),
                    parent=self._serial(op.operand(1)))
        self.mapping[op.result()] = buf

    def _emit_tensor_extract_slice(self, builder, op) -> None:
        buf = self.mapping[op.operand(0)]
        rank = (op.num_operands - 1) // 2
        offs = [self.mapping.get(o, o) for o in op.operands[1 : 1 + rank]]
        sizes = [self.mapping.get(o, o) for o in op.operands[1 + rank :]]
        view = memref.SubViewOp.build(builder, buf, offs, sizes).result()
        fresh = self._alloc_like(builder, view)
        self._stamp(memref.CopyOp.build(builder, view, fresh),
                    reads=self._serial(op.operand(0)),
                    writes=self._serial(op.result()))
        self.mapping[op.result()] = fresh

    def _emit_tensor_insert_slice(self, builder, op) -> None:
        dest = self._consume(builder, op, 1)
        rank = (op.num_operands - 2) // 2
        offs = [self.mapping.get(o, o) for o in op.operands[2 : 2 + rank]]
        sizes = [self.mapping.get(o, o) for o in op.operands[2 + rank :]]
        view = memref.SubViewOp.build(builder, dest, offs, sizes).result()
        self._stamp(
            memref.CopyOp.build(builder, self.mapping[op.operand(0)], view),
            reads=self._serial(op.operand(0)),
            writes=self._serial(op.result()),
            parent=self._serial(op.operand(1)),
        )
        self.mapping[op.result()] = dest

    # vector ops --------------------------------------------------------------

    def _emit_vector_transfer_read(self, builder, op) -> None:
        buf = self.mapping[op.operand(0)]
        idx = [self.mapping.get(o, o) for o in op.operands[1:]]
        new = vector.TransferReadOp.build(builder, buf, idx, op.result().type)
        self._stamp(new, reads=self._serial(op.operand(0)))
        self.mapping[op.result()] = new.result()

    def _emit_vector_transfer_write(self, builder, op) -> None:
        vec = self.mapping.get(op.operand(0), op.operand(0))
        if op.num_results:
            buf = self._consume(builder, op, 1)
            idx = [self.mapping.get(o, o) for o in op.operands[2:]]
            new = vector.TransferWriteOp.build(builder, vec, buf, idx)
            self._stamp(new, writes=self._serial(op.result()),
                        parent=self._serial(op.operand(1)))
            self.mapping[op.result()] = buf
        else:
            buf = self.mapping[op.operand(1)]
            idx = [self.mapping.get(o, o) for o in op.operands[2:]]
            vector.TransferWriteOp.build(builder, vec, buf, idx)

    # control flow ---------------------------------------------------------------

    def _emit_scf_for(self, builder, op: scf.ForOp) -> None:
        lb, ub, step = (
            self.mapping.get(op.operand(i), op.operand(i)) for i in range(3)
        )
        # Tensor iter-args become buffers living across the loop; other
        # carried values stay as iter_args.
        buffer_positions: List[int] = []
        scalar_positions: List[int] = []
        buffers: List[Value] = []
        scalar_inits: List[Value] = []
        for j, init in enumerate(op.operands[3:]):
            if isinstance(init.type, TensorType):
                buffer_positions.append(j)
                buffers.append(self._consume_for_loop(builder, op, 3 + j))
            else:
                scalar_positions.append(j)
                scalar_inits.append(self.mapping.get(init, init))
        new_loop = scf.ForOp.build(builder, lb, ub, step, scalar_inits)
        # Preserve source-loop attributes (the translation validator's
        # tv_id stamp in particular) across the rebuild.
        for key, attr in op.attributes.items():
            new_loop.attributes.setdefault(key, attr)
        body_builder = OpBuilder.at_end(new_loop.body)
        self.mapping[op.body.arguments[0]] = new_loop.induction_var
        for j, buf in zip(buffer_positions, buffers):
            self.mapping[op.body.arguments[1 + j]] = buf
            self.owned.add(id(buf))
        for j, arg in zip(scalar_positions, new_loop.iter_args):
            self.mapping[op.body.arguments[1 + j]] = arg
        term = op.body.terminator
        for inner in op.body.operations:
            if inner is term:
                break
            self._emit_op(body_builder, inner)
        # Yield: scalars pass through; buffers must end up in place.
        scalar_yields = []
        carries: List[List[int]] = []
        for j, yielded in enumerate(term.operands):
            mapped = self.mapping.get(yielded, yielded)
            if j in buffer_positions:
                buf = buffers[buffer_positions.index(j)]
                arg_old = op.body.arguments[1 + j]
                carries.append([
                    self._serial(op.operand(3 + j)),
                    self._serial(arg_old),
                    self._serial(yielded),
                    self._serial(op.results[j]),
                ])
                if mapped is not buf:
                    s = self._serial(yielded)
                    self._stamp(memref.CopyOp.build(body_builder, mapped, buf),
                                reads=s, writes=s,
                                parent=self._serial(arg_old))
            else:
                scalar_yields.append(mapped)
        scf.YieldOp.build(body_builder, scalar_yields)
        if carries:
            new_loop.attributes["absint_carries"] = DenseIntElementsAttr(
                carries
            )
        for j, res in enumerate(op.results):
            if j in buffer_positions:
                self.mapping[res] = buffers[buffer_positions.index(j)]
            else:
                self.mapping[res] = new_loop.results[
                    scalar_positions.index(j)
                ]

    def _consume_for_loop(self, builder, op, operand_index) -> Value:
        """Like :meth:`_consume` but for loop inits: the loop body reads
        and writes the buffer many times, so stealing additionally
        requires that no other op uses the initial value."""
        return self._consume(builder, op, operand_index)

    def _emit_func_return(self, builder, op) -> None:
        builder.create(
            "func.return",
            [self.mapping.get(o, o) for o in op.operands],
        )

    def _emit_scf_yield(self, builder, op) -> None:  # handled by parents
        raise BufferizationError("orphan scf.yield")


class BufferizePass(Pass):
    """Replace tensors with buffers across every function of the module.

    Runs after lowering (no ``cfd.stencilOp``/``linalg`` left); functions
    whose bodies contain ops this pass does not model raise
    :class:`BufferizationError`.
    """

    name = "bufferize"

    def run(self, module: ModuleOp) -> None:
        for op in list(module.body.operations):
            if op.name == "func.func":
                _Bufferizer().bufferize_function(op)
