"""The midend optimizer: IR-level cleanups between lowering and codegen.

The paper's pipeline (tiling -> fusion -> vectorization -> lowering,
SS2-SS3) stops at straightforward lowering, which leaves the generated
loop bodies full of rematerialized constants, duplicate index arithmetic
and loop-invariant computations. On a Python-hosted backend every one of
those is an interpreted statement *per loop iteration*, so a classic
scalar-optimizer suite pays off directly in kernel run time:

* :class:`ConstantFoldPass` — evaluate operations over constants and the
  usual algebraic identities (``x + 0``, ``x * 1``, ...);
* :class:`CSEPass` — dominance-scoped common-subexpression elimination
  driven by :meth:`repro.ir.operation.Operation.structural_key`;
* :class:`LICMPass` — loop-invariant code motion hoisting speculatable
  ops (including ``tensor.extract_slice`` and index arithmetic) out of
  ``scf.for`` / ``cfd.tiled_loop`` / ``scf.parallel`` bodies;
* :class:`DCEPass` — dead-code elimination of unused side-effect-free ops.

:func:`optimization_pipeline` assembles them per ``CompileOptions.opt_level``:
level 0 is off, level 1 runs fold+dce, level 2 (the default) adds CSE and
LICM. Every pass preserves value semantics exactly — the property suite
asserts bit-identical numerics between levels 0 and 2.
"""

from __future__ import annotations

import math
import operator
from typing import Callable, Dict, List, Optional, Union

from repro.ir.attributes import Attribute, FloatAttr, IntegerAttr
from repro.ir.operation import Operation
from repro.ir.pass_manager import Pass
from repro.ir.rewriter import PatternRewriter, RewritePattern, apply_patterns_greedily
from repro.ir.types import FloatType
from repro.ir.values import BlockArgument, OpResult, Value

# ---------------------------------------------------------------------------
# Effects model: which operations the optimizer may touch.
# ---------------------------------------------------------------------------

#: Side-effect-free ops whose results are pure functions of their operands:
#: safe to CSE (given identical operands) and to DCE when unused.
_PURE_OPS = frozenset(
    {
        "arith.constant",
        "arith.addf",
        "arith.subf",
        "arith.mulf",
        "arith.divf",
        "arith.negf",
        "arith.maximumf",
        "arith.minimumf",
        "arith.addi",
        "arith.subi",
        "arith.muli",
        "arith.floordivi",
        "arith.remi",
        "arith.minsi",
        "arith.maxsi",
        "arith.cmpf",
        "arith.cmpi",
        "arith.select",
        "arith.index_cast",
        "arith.sitofp",
        "math.sqrt",
        "math.absf",
        "math.exp",
        "math.log",
        "math.fma",
        "math.powf",
        "tensor.dim",
        "tensor.extract",
        "tensor.extract_slice",
        "vector.broadcast",
        "vector.extract",
        "vector.fma",
        "vector.transfer_read",
    }
)

#: Ops eligible for CSE. Pure ops only: ``tensor.empty`` and the
#: functional-update ops are deliberately excluded — each application
#: stands for a distinct buffer, and keeping them distinct preserves the
#: backend's in-place buffer-stealing opportunities.
_CSE_OPS = _PURE_OPS

#: Value-semantics ops that may be erased when every result is unused but
#: whose results must never be merged (fresh buffers / functional updates).
_DCE_ONLY_OPS = frozenset(
    {
        "tensor.empty",
        "tensor.insert",
        "tensor.insert_slice",
        "linalg.fill",
        "cfd.get_parallel_blocks",
    }
)

#: Ops safe to *speculate*: executing them when the enclosing loop would
#: have run zero iterations cannot raise. Scalar indexing
#: (``tensor.extract``, ``vector.transfer_read``) is excluded — a hoisted
#: out-of-range index would fault in the emitted Python — while slicing
#: (``tensor.extract_slice``) clamps and is always safe.
_SPECULATABLE_OPS = _PURE_OPS - {
    "tensor.extract",
    "vector.transfer_read",
    # Division: only speculatable with a provably nonzero divisor, handled
    # separately in :func:`_hoistable`.
    "arith.divf",
    "arith.floordivi",
    "arith.remi",
}

_GUARDED_DIV_OPS = frozenset({"arith.divf", "arith.floordivi", "arith.remi"})

#: Region-carrying ops whose single body block is a loop body.
_LOOP_OPS = frozenset({"scf.for", "scf.parallel", "cfd.tiled_loop"})


def _constant_value(value: Value) -> Optional[Union[int, float]]:
    """The Python constant behind ``value`` if it is an ``arith.constant``."""
    if isinstance(value, OpResult) and value.op.name == "arith.constant":
        attr = value.op.attributes.get("value")
        if isinstance(attr, (IntegerAttr, FloatAttr)):
            return attr.value
    return None


# ---------------------------------------------------------------------------
# Constant folding.
# ---------------------------------------------------------------------------

#: Folders over integer/index constants. Semantics match the emitted
#: Python exactly (``//`` floors, min/max tie-break irrelevant on ints).
_INT_FOLDS: Dict[str, Callable[[int, int], int]] = {
    "arith.addi": operator.add,
    "arith.subi": operator.sub,
    "arith.muli": operator.mul,
    "arith.floordivi": operator.floordiv,
    "arith.remi": operator.mod,
    "arith.minsi": min,
    "arith.maxsi": max,
}

#: Folders over float constants. ``maximumf``/``minimumf`` are left out:
#: the backend lowers them to ``_np.maximum``/``minimum`` whose NaN
#: propagation differs from Python's ``max``/``min``.
_FLOAT_FOLDS: Dict[str, Callable[[float, float], float]] = {
    "arith.addf": operator.add,
    "arith.subf": operator.sub,
    "arith.mulf": operator.mul,
    "arith.divf": operator.truediv,
}

_CMP_FOLDS: Dict[str, Callable[[float, float], bool]] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}

_UNARY_FLOAT_FOLDS: Dict[str, Callable[[float], float]] = {
    "arith.negf": operator.neg,
    "math.sqrt": math.sqrt,
    "math.absf": abs,
    "math.exp": math.exp,
    "math.log": math.log,
}


class _FoldArith(RewritePattern):
    """Fold constant expressions and algebraic identities in one pattern."""

    op_name = None  # dispatch on the op name inside match_and_rewrite

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        name = op.name
        if name in _INT_FOLDS or name in _FLOAT_FOLDS:
            return self._fold_binary(op, rewriter)
        if name in _UNARY_FLOAT_FOLDS:
            return self._fold_unary(op, rewriter)
        if name in ("arith.cmpi", "arith.cmpf"):
            return self._fold_cmp(op, rewriter)
        if name == "arith.select":
            return self._fold_select(op, rewriter)
        if name == "arith.index_cast":
            return self._fold_cast(op, rewriter, int)
        if name == "arith.sitofp":
            return self._fold_cast(op, rewriter, float)
        return False

    # -- helpers ----------------------------------------------------------

    def _replace_with_constant(
        self, op: Operation, rewriter: PatternRewriter, value: Union[int, float]
    ) -> bool:
        result_type = op.result().type
        attr: Attribute
        if isinstance(result_type, FloatType):
            attr = FloatAttr(float(value), result_type)
        else:
            attr = IntegerAttr(int(value), result_type)
        const = rewriter.create("arith.constant", [], [result_type], {"value": attr})
        rewriter.replace_op(op, [const.result()])
        return True

    def _fold_binary(self, op: Operation, rewriter: PatternRewriter) -> bool:
        a = _constant_value(op.operand(0))
        b = _constant_value(op.operand(1))
        name = op.name
        is_float = name in _FLOAT_FOLDS
        if a is not None and b is not None:
            if name in ("arith.floordivi", "arith.remi", "arith.divf") and b == 0:
                return False
            fold = _FLOAT_FOLDS[name] if is_float else _INT_FOLDS[name]
            return self._replace_with_constant(op, rewriter, fold(a, b))
        # Identities; float identities are limited to `x * 1.0` and
        # `x / 1.0`, which are bit-exact for every IEEE input (including
        # NaN, infinities and signed zeros).
        lhs, rhs = op.operand(0), op.operand(1)
        if name in ("arith.addi", "arith.subi") and b == 0:
            rewriter.replace_op(op, [lhs])
            return True
        if name == "arith.addi" and a == 0:
            rewriter.replace_op(op, [rhs])
            return True
        if name in ("arith.muli", "arith.floordivi") and b == 1:
            rewriter.replace_op(op, [lhs])
            return True
        if name == "arith.muli" and a == 1:
            rewriter.replace_op(op, [rhs])
            return True
        if name == "arith.muli" and (a == 0 or b == 0):
            return self._replace_with_constant(op, rewriter, 0)
        if name in ("arith.minsi", "arith.maxsi") and lhs is rhs:
            rewriter.replace_op(op, [lhs])
            return True
        if name in ("arith.mulf", "arith.divf") and b == 1.0:
            rewriter.replace_op(op, [lhs])
            return True
        if name == "arith.mulf" and a == 1.0:
            rewriter.replace_op(op, [rhs])
            return True
        return False

    def _fold_unary(self, op: Operation, rewriter: PatternRewriter) -> bool:
        a = _constant_value(op.operand(0))
        if a is None or not isinstance(op.result().type, FloatType):
            return False
        if op.name == "math.sqrt" and a < 0:
            return False
        if op.name == "math.log" and a <= 0:
            return False
        return self._replace_with_constant(
            op, rewriter, _UNARY_FLOAT_FOLDS[op.name](a)
        )

    def _fold_cmp(self, op: Operation, rewriter: PatternRewriter) -> bool:
        a = _constant_value(op.operand(0))
        b = _constant_value(op.operand(1))
        if a is None or b is None:
            return False
        predicate = op.attributes["predicate"].value  # type: ignore[union-attr]
        return self._replace_with_constant(op, rewriter, int(_CMP_FOLDS[predicate](a, b)))

    def _fold_select(self, op: Operation, rewriter: PatternRewriter) -> bool:
        cond = _constant_value(op.operand(0))
        if cond is None:
            return False
        rewriter.replace_op(op, [op.operand(1) if cond else op.operand(2)])
        return True

    def _fold_cast(
        self, op: Operation, rewriter: PatternRewriter, cast: Callable
    ) -> bool:
        a = _constant_value(op.operand(0))
        if a is None:
            return False
        if cast is float and not isinstance(op.result().type, FloatType):
            return False
        return self._replace_with_constant(op, rewriter, cast(a))


class ConstantFoldPass(Pass):
    """Evaluate constant expressions and algebraic identities."""

    name = "constant-fold"

    def run(self, module: Operation) -> None:
        apply_patterns_greedily(module, [_FoldArith()])


# ---------------------------------------------------------------------------
# Common-subexpression elimination.
# ---------------------------------------------------------------------------


class CSEPass(Pass):
    """Dominance-scoped CSE over :meth:`Operation.structural_key`.

    Walks the region tree with a scope stack (one hash table per block,
    MLIR's CSE structure): an op may be replaced by a structurally
    identical op seen earlier in the same block or in any enclosing
    block — positions that are guaranteed to dominate it. Sibling blocks
    (e.g. the two arms of ``scf.if``) never share entries.
    """

    name = "cse"

    def run(self, module: Operation) -> None:
        self._process_op(module, [])

    def _process_op(self, op: Operation, scopes: List[Dict[tuple, Operation]]) -> None:
        for region in op.regions:
            for block in region.blocks:
                scopes.append({})
                for inner in list(block.operations):
                    self._visit(inner, scopes)
                scopes.pop()

    def _visit(self, op: Operation, scopes: List[Dict[tuple, Operation]]) -> None:
        if op.name in _CSE_OPS and not op.regions and op.num_results > 0:
            key = op.structural_key()
            for scope in reversed(scopes):
                existing = scope.get(key)
                if existing is not None:
                    for old, new in zip(op.results, existing.results):
                        old.replace_all_uses_with(new)
                    op.erase()
                    return
            scopes[-1][key] = op
        self._process_op(op, scopes)


# ---------------------------------------------------------------------------
# Loop-invariant code motion.
# ---------------------------------------------------------------------------


class LICMPass(Pass):
    """Hoist speculatable loop-invariant ops out of loop bodies.

    Handles ``scf.for``, ``scf.parallel`` and ``cfd.tiled_loop``.
    Division and remainder are hoisted only when the divisor is a nonzero
    constant (speculating a division by a runtime-zero divisor out of a
    zero-trip loop would introduce a crash). Iterates to fixpoint so
    invariants escape multi-level loop nests: an op hoisted out of the
    cache-tile loop becomes a candidate at the sub-domain level.
    """

    name = "licm"

    def run(self, module: Operation) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(module.walk()):
                if op.name in _LOOP_OPS and op.parent is not None:
                    changed |= self._hoist_from(op)

    @staticmethod
    def _defined_inside(value: Value, loop: Operation) -> bool:
        if isinstance(value, BlockArgument):
            region = value.block.parent
            owner = region.parent if region is not None else None
        else:
            owner = value.op if isinstance(value, OpResult) else None
        return owner is not None and loop.is_ancestor_of(owner)

    @classmethod
    def _hoistable(cls, op: Operation, loop: Operation) -> bool:
        if op.regions or op.num_results == 0:
            return False
        if op.name in _GUARDED_DIV_OPS:
            divisor = _constant_value(op.operand(1))
            if divisor is None or divisor == 0:
                return False
        elif op.name not in _SPECULATABLE_OPS:
            return False
        return not any(cls._defined_inside(o, loop) for o in op.operands)

    def _hoist_from(self, loop: Operation) -> bool:
        parent = loop.parent
        changed = False
        for region in loop.regions:
            for block in region.blocks:
                term = block.terminator
                for op in list(block.operations):
                    if op is term or not self._hoistable(op, loop):
                        continue
                    block.remove_op(op)
                    parent.insert_before(loop, op)
                    changed = True
        return changed


# ---------------------------------------------------------------------------
# Dead-code elimination.
# ---------------------------------------------------------------------------


class DCEPass(Pass):
    """Erase unused side-effect-free ops, bottom-up, to fixpoint."""

    name = "dce"

    _ERASABLE = _PURE_OPS | _DCE_ONLY_OPS | {"vector.transfer_write"}

    def run(self, module: Operation) -> None:
        changed = True
        while changed:
            changed = False
            for op in reversed(list(module.walk())):
                if op is module or op.parent is None:
                    continue
                if op.name not in self._ERASABLE or op.regions:
                    continue
                # `vector.transfer_write` is functional (erasable) only in
                # its tensor form, where it produces the updated tensor.
                if op.num_results == 0:
                    continue
                if op is op.parent.terminator:
                    continue
                if any(r.has_uses for r in op.results):
                    continue
                op.erase()
                changed = True


# ---------------------------------------------------------------------------
# Pipeline assembly.
# ---------------------------------------------------------------------------


def optimization_pipeline(opt_level: int) -> List[Pass]:
    """The midend pass list for one ``CompileOptions.opt_level``.

    * ``0`` — no optimization (the raw lowering output);
    * ``1`` — constant folding + DCE;
    * ``2`` — folding, CSE, LICM, a second CSE round (duplicates hoisted
      out of sibling loops meet in the parent block) and a final DCE.
    """
    if opt_level <= 0:
        return []
    if opt_level == 1:
        return [ConstantFoldPass(), DCEPass()]
    return [
        ConstantFoldPass(),
        CSEPass(),
        LICMPass(),
        CSEPass(),
        DCEPass(),
    ]
