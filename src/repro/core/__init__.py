"""The paper's contribution: the in-place stencil code generator.

* :mod:`repro.core.stencil` — stencil patterns (the L/U split of Eq. 2);
* :mod:`repro.core.tiling` — tiling with the in-place tile-size restriction;
* :mod:`repro.core.fusion` — producer/consumer fusion after tiling;
* :mod:`repro.core.scheduling` — sub-domain wavefront scheduling (Eq. 3);
* :mod:`repro.core.vectorization` — partial vectorization (Fig. 2/7);
* :mod:`repro.core.bufferization` — tensors to buffers;
* :mod:`repro.core.lowering` — stencil/tiled-loop ops to scf loops;
* :mod:`repro.core.pipeline` — the end-to-end ``StencilCompiler``;
* :mod:`repro.core.autotune` — L2-bounded tile-size autotuning.
"""

from repro.core.stencil import (
    StencilPattern,
    gauss_seidel_5pt_2d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    gauss_seidel_6pt_3d,
    jacobi_5pt_2d,
    sor_5pt_2d,
)


def __getattr__(name):
    # Lazy: repro.core.pipeline imports the codegen backends, which import
    # the dialects, which import repro.core.stencil — eager importing here
    # would close that cycle during interpreter startup (PEP 562).
    if name in ("CompileOptions", "StencilCompiler"):
        from repro.core import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "StencilPattern",
    "gauss_seidel_5pt_2d",
    "gauss_seidel_9pt_2d",
    "gauss_seidel_9pt_2nd_order_2d",
    "gauss_seidel_6pt_3d",
    "jacobi_5pt_2d",
    "sor_5pt_2d",
    "CompileOptions",
    "StencilCompiler",
]
