"""Lowering of stencil and structured ops to loops (§3.2, Fig. 5).

This module provides the *scalar* lowerings; the partially vectorized
lowering of ``cfd.stencilOp`` (Fig. 2/7) lives in
:mod:`repro.core.vectorization`. Both share the bound-computation and
region-inlining helpers defined here.

The scalar lowering of ``cfd.stencilOp`` produces the canonical form of
Fig. 5: a k-deep ``scf.for`` nest threading the Y tensor through
``iter_args``, extracting each stencil access with ``tensor.extract``,
inlining the payload region, and updating Y with ``tensor.insert``.
Backward sweeps (``sweep = -1``) iterate a normalized ascending loop and
map the induction variable through ``idx = hi - 1 - iv``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.dialects import arith, cfd, scf, tensor
from repro.dialects.linalg import FillOp, GenericOp
from repro.ir import Pass
from repro.ir.block import Block
from repro.ir.builder import OpBuilder
from repro.ir.rewriter import PatternRewriter, RewritePattern, apply_patterns_greedily
from repro.ir.types import TensorType
from repro.ir.values import BlockArgument, Value


def space_dim(builder: OpBuilder, value: Value, d: int, lead: int = 1) -> Value:
    """The size of space dimension ``d`` (tensor dim ``d + lead``)."""
    t: TensorType = value.type  # type: ignore[assignment]
    if t.shape[d + lead] != -1:
        return arith.const_index(builder, t.shape[d + lead])
    return tensor.DimOp.build(builder, value, d + lead).result()


def stencil_write_bounds(
    builder: OpBuilder, op: cfd.StencilOp
) -> Tuple[List[Value], List[Value]]:
    """The ``[lo, hi)`` write bounds of a stencil op, as index values.

    Explicit bounds operands win; otherwise the pattern-derived interior
    of the (possibly dynamic) tensor shape.
    """
    pattern = op.pattern
    if op.has_bounds:
        return list(op.bounds_lo), list(op.bounds_hi)
    los, his = [], []
    for d in range(pattern.rank):
        lo = max([0] + [-o[d] for o, _ in pattern.accesses])
        hi_margin = max([0] + [o[d] for o, _ in pattern.accesses])
        los.append(arith.const_index(builder, lo))
        n = space_dim(builder, op.y_init, d)
        his.append(
            arith.subi(builder, n, arith.const_index(builder, hi_margin))
        )
    return los, his


def build_sweep_nest(
    builder: OpBuilder,
    los: Sequence[Value],
    his: Sequence[Value],
    sweep: int,
    iter_args: Sequence[Value],
):
    """A loop nest over ``[lo, hi)`` per dim, honoring sweep direction.

    Returns ``(outer_op, inner_builder, idx_values, inner_iter_args)``
    where ``idx_values`` are the (possibly reversed) actual coordinates.
    The caller emits the innermost body then yields through the pre-wired
    nest (each loop already yields its child's results).
    """
    zero = arith.const_index(builder, 0)
    one = arith.const_index(builder, 1)
    loops: List[scf.ForOp] = []
    idx_values: List[Value] = []
    current_builder = builder
    current_args = list(iter_args)
    for lo, hi in zip(los, his):
        if sweep == -1:
            span = arith.subi(current_builder, hi, lo)
            loop = scf.ForOp.build(current_builder, zero, span, one, current_args)
            body = OpBuilder.at_end(loop.body)
            hi_m1 = arith.subi(body, hi, one)
            idx = arith.subi(body, hi_m1, loop.induction_var)
        else:
            loop = scf.ForOp.build(current_builder, lo, hi, one, current_args)
            body = OpBuilder.at_end(loop.body)
            idx = loop.induction_var
        loops.append(loop)
        idx_values.append(idx)
        current_args = loop.iter_args
        current_builder = body
    for parent, child in zip(loops, loops[1:]):
        scf.YieldOp.build(OpBuilder.at_end(parent.body), list(child.results))
    return loops[0], current_builder, idx_values, current_args


def inline_region_scalars(
    builder: OpBuilder, block: Block, args: Sequence[Value]
) -> List[Value]:
    """Clone a payload region at the insertion point with bound arguments;
    returns the values the terminator yields."""
    mapping: Dict[Value, Value] = dict(zip(block.arguments, args))
    term = block.terminator
    for op in block.operations:
        if op is term:
            break
        builder.insert(op.clone(mapping))
    return [mapping.get(v, v) for v in term.operands]


def backward_slice(block: Block, targets: Sequence[Value]) -> Set[int]:
    """ids of the ops in ``block`` needed to compute ``targets``."""
    needed: Set[int] = set()
    work = [v for v in targets]
    while work:
        v = work.pop()
        if isinstance(v, BlockArgument):
            continue
        op = getattr(v, "op", None)
        if op is None or op.parent is not block or id(op) in needed:
            continue
        needed.add(id(op))
        work.extend(op.operands)
    return needed


def slice_depends_on(
    block: Block, targets: Sequence[Value], args: Set[Value]
) -> bool:
    """Whether computing ``targets`` transitively reads any of ``args``."""
    seen: Set[int] = set()
    work = list(targets)
    while work:
        v = work.pop()
        if v in args:
            return True
        if isinstance(v, BlockArgument):
            continue
        op = getattr(v, "op", None)
        if op is None or op.parent is not block or id(op) in seen:
            continue
        seen.add(id(op))
        work.extend(op.operands)
    return False


def lower_stencil_scalar(op: cfd.StencilOp, rewriter: PatternRewriter) -> None:
    """Fig. 5: the canonical scalar loop nest for one stencil sweep."""
    pattern = op.pattern
    nv = op.nb_var
    k = pattern.rank
    los, his = stencil_write_bounds(rewriter, op)
    outer, body, idx, iter_args = build_sweep_nest(
        rewriter, los, his, pattern.sweep, [op.y_init]
    )
    y = iter_args[0]
    x, b = op.x, op.b

    def coords(v_const: Value, offset: Sequence[int]) -> List[Value]:
        out = [v_const]
        for d in range(k):
            if offset[d]:
                c = arith.const_index(body, offset[d])
                out.append(arith.addi(body, idx[d], c))
            else:
                out.append(idx[d])
        return out

    v_consts = [arith.const_index(body, v) for v in range(nv)]
    args: List[Value] = []
    for offset, tag in pattern.accesses:
        src = y if tag == -1 else x
        for v in range(nv):
            args.append(
                tensor.ExtractOp.build(body, src, coords(v_consts[v], offset)).result()
            )
    zero_off = [0] * k
    for v in range(nv):
        args.append(
            tensor.ExtractOp.build(body, x, coords(v_consts[v], zero_off)).result()
        )
    yields = inline_region_scalars(body, op.body, args)
    d_val = yields[0]
    contribs = yields[1:]
    n_access = pattern.num_accesses
    current_y = y
    for v in range(nv):
        total = tensor.ExtractOp.build(
            body, b, coords(v_consts[v], zero_off)
        ).result()
        for a in range(n_access + 1):
            total = arith.addf(body, total, contribs[a * nv + v])
        val = arith.divf(body, total, d_val)
        current_y = tensor.InsertOp.build(
            body, val, current_y, coords(v_consts[v], zero_off)
        ).result()
    scf.YieldOp.build(body, [current_y])
    if "tv_id" in op.attributes:
        outer.attributes["tv_id"] = op.attributes["tv_id"]
    rewriter.replace_op(op, [outer.result()])


def lower_generic_to_loops(op: GenericOp, rewriter: PatternRewriter) -> None:
    """Scalar loops for ``linalg.generic`` (the no-vectorization path)."""
    out_t: TensorType = op.out_init.type  # type: ignore[assignment]
    rank = out_t.rank
    offsets = op.offsets
    margins = op.margins
    los, his = [], []
    for d in range(rank):
        lo = max([0] + [-o[d] for o in offsets])
        hi_margin = max([0] + [o[d] for o in offsets])
        m_lo, m_hi = margins[d]
        los.append(arith.const_index(rewriter, max(lo, m_lo)))
        n = space_dim(rewriter, op.out_init, d, lead=0)
        his.append(
            arith.subi(
                rewriter, n, arith.const_index(rewriter, max(hi_margin, m_hi))
            )
        )
    outer, body, idx, iter_args = build_sweep_nest(
        rewriter, los, his, 1, [op.out_init]
    )
    out = iter_args[0]

    def coords(offset: Sequence[int]) -> List[Value]:
        result = []
        for d in range(rank):
            if offset[d]:
                c = arith.const_index(body, offset[d])
                result.append(arith.addi(body, idx[d], c))
            else:
                result.append(idx[d])
        return result

    args = [
        tensor.ExtractOp.build(body, in_v, coords(off)).result()
        for in_v, off in zip(op.ins, offsets)
    ]
    args.append(
        tensor.ExtractOp.build(body, out, coords([0] * rank)).result()
    )
    yields = inline_region_scalars(body, op.body, args)
    new_out = tensor.InsertOp.build(
        body, yields[0], out, coords([0] * rank)
    ).result()
    scf.YieldOp.build(body, [new_out])
    rewriter.replace_op(op, [outer.result()])


def lower_fill_to_loops(op: FillOp, rewriter: PatternRewriter) -> None:
    out_t: TensorType = op.init.type  # type: ignore[assignment]
    rank = out_t.rank
    zero = arith.const_index(rewriter, 0)
    los = [zero] * rank
    his = [space_dim(rewriter, op.init, d, lead=0) for d in range(rank)]
    outer, body, idx, iter_args = build_sweep_nest(
        rewriter, los, his, 1, [op.init]
    )
    new_out = tensor.InsertOp.build(
        body, op.scalar, iter_args[0], idx
    ).result()
    scf.YieldOp.build(body, [new_out])
    rewriter.replace_op(op, [outer.result()])


def lower_face_iterator_to_loops(
    op: cfd.FaceIteratorOp, rewriter: PatternRewriter
) -> None:
    """Scalar loops over faces along the op's axis."""
    x, b_init = op.x, op.b_init
    nv = op.nb_var
    axis = op.axis
    t: TensorType = x.type  # type: ignore[assignment]
    k = t.rank - 1
    zero = arith.const_index(rewriter, 0)
    one = arith.const_index(rewriter, 1)
    los = [zero] * k
    his = []
    for d in range(k):
        n = space_dim(rewriter, x, d)
        his.append(arith.subi(rewriter, n, one) if d == axis else n)
    outer, body, idx, iter_args = build_sweep_nest(
        rewriter, los, his, 1, [b_init]
    )
    b = iter_args[0]
    one_b = arith.const_index(body, 1)
    j_idx = [
        arith.addi(body, idx[d], one_b) if d == axis else idx[d]
        for d in range(k)
    ]
    v_consts = [arith.const_index(body, v) for v in range(nv)]
    args = [
        tensor.ExtractOp.build(body, x, [v_consts[v]] + list(idx)).result()
        for v in range(nv)
    ]
    args += [
        tensor.ExtractOp.build(body, x, [v_consts[v]] + j_idx).result()
        for v in range(nv)
    ]
    fluxes = inline_region_scalars(body, op.body, args)
    current = b
    for v in range(nv):
        left = tensor.ExtractOp.build(
            body, current, [v_consts[v]] + list(idx)
        ).result()
        current = tensor.InsertOp.build(
            body,
            arith.subf(body, left, fluxes[v]),
            current,
            [v_consts[v]] + list(idx),
        ).result()
        right = tensor.ExtractOp.build(
            body, current, [v_consts[v]] + j_idx
        ).result()
        current = tensor.InsertOp.build(
            body,
            arith.addf(body, right, fluxes[v]),
            current,
            [v_consts[v]] + j_idx,
        ).result()
    scf.YieldOp.build(body, [current])
    rewriter.replace_op(op, [outer.result()])


class _LowerStencilScalar(RewritePattern):
    op_name = "cfd.stencilOp"

    def match_and_rewrite(self, op, rewriter):
        lower_stencil_scalar(op, rewriter)
        return True


class _LowerGeneric(RewritePattern):
    op_name = "linalg.generic"

    def match_and_rewrite(self, op, rewriter):
        lower_generic_to_loops(op, rewriter)
        return True


class _LowerFill(RewritePattern):
    op_name = "linalg.fill"

    def match_and_rewrite(self, op, rewriter):
        lower_fill_to_loops(op, rewriter)
        return True


class _LowerFaceIterator(RewritePattern):
    op_name = "cfd.faceIteratorOp"

    def match_and_rewrite(self, op, rewriter):
        lower_face_iterator_to_loops(op, rewriter)
        return True


class LowerStencilsPass(Pass):
    """Lower every ``cfd.stencilOp`` to scalar loops (Fig. 5).

    The vectorizing variant is
    :class:`repro.core.vectorization.VectorizeStencilsPass`.
    """

    name = "lower-stencils-scalar"

    def run(self, module) -> None:
        apply_patterns_greedily(module, [_LowerStencilScalar()])


class LowerStructuredPass(Pass):
    """Lower linalg.generic/fill and cfd.faceIteratorOp to scalar loops —
    the "no vectorization" ablation configuration. When vectorization is
    on, these ops are left intact for the backend's whole-array emission.
    """

    name = "lower-structured-scalar"

    def run(self, module) -> None:
        apply_patterns_greedily(
            module, [_LowerGeneric(), _LowerFill(), _LowerFaceIterator()]
        )
