"""Tiling of in-place stencils (§2.1, §3.3).

Two pieces:

* :func:`legalize_tile_sizes` — the in-place restriction. A rectangular
  tiling executed in lexicographic tile order is only valid when every
  ``L`` offset maps to lexicographically negative *block* offsets for
  every corner alignment (Fig. 1). An L offset with a positive trailing
  component (a negative dependence distance, e.g. ``(-1, 1)`` in the
  9-point kernel) would otherwise create a cyclic block dependence; the
  legalizer forces tile size 1 along an earlier strictly-negative
  dimension of that offset, which pins the block offset lexicographically
  negative. This reproduces the paper's ``1 x 128`` choice for the
  9-point kernel.

* :func:`tile_stencil_op` — rewrite one ``cfd.stencilOp`` into a
  ``cfd.tiled_loop`` over halo-inclusive data tiles carved with
  ``tensor.extract_slice``/``insert_slice`` (Fig. 6), each tile running a
  bounded ``cfd.stencilOp`` that writes exactly its core. Optionally
  attaches wavefront groups computed by ``cfd.get_parallel_blocks``
  (§3.4) so the loop can later run its independent tiles in parallel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.stencil import StencilPattern
from repro.dialects import arith, cfd, tensor
from repro.ir import Operation, Pass
from repro.ir.attributes import DenseIntElementsAttr, IntegerAttr
from repro.ir.builder import OpBuilder
from repro.ir.rewriter import PatternRewriter, RewritePattern, apply_patterns_greedily
from repro.ir.types import TensorType
from repro.ir.values import Value


def legalize_tile_sizes(
    pattern: StencilPattern, proposed: Sequence[int]
) -> List[int]:
    """Clamp tile sizes so lexicographic tile execution stays valid.

    For every effective L offset (sweep-adjusted) with a positive
    component at some dimension ``m`` (a negative dependence distance),
    tile size 1 is forced along one strictly-negative earlier dimension —
    choosing the last such dimension, which preserves larger leading
    tiles. The result is verified against the derived block offsets.
    """
    if len(proposed) != pattern.rank:
        raise ValueError(
            f"{len(proposed)} tile sizes for a rank-{pattern.rank} pattern"
        )
    sizes = [max(1, int(t)) for t in proposed]
    effective = [
        tuple(c * pattern.sweep for c in o)
        for o in pattern.schedule_relevant_offsets()
    ]
    for off in effective:
        positives = [d for d, c in enumerate(off) if c > 0]
        if not positives:
            continue
        m = positives[0]
        candidates = [d for d in range(m) if off[d] < 0]
        if not candidates:  # cannot happen for a validated pattern
            raise ValueError(f"L offset {off} has no negative leading component")
        if not any(sizes[d] == 1 for d in candidates):
            sizes[candidates[-1]] = 1
    _check_block_legality(pattern, sizes)
    return sizes


def _check_block_legality(
    pattern: StencilPattern, tile_sizes: Sequence[int]
) -> None:
    """Assert all block offsets are on the correct lexicographic side."""
    for block in pattern.block_stencil_offsets(tile_sizes):
        effective = tuple(c * pattern.sweep for c in block)
        first = next((c for c in effective if c != 0), 0)
        if first >= 0:
            raise ValueError(
                f"tile sizes {list(tile_sizes)} are invalid for this "
                f"pattern: block offset {block} is not lexicographically "
                "negative (cyclic tile dependence)"
            )


def tile_footprint_bytes(
    tile_sizes: Sequence[int],
    nb_var: int,
    live_tensors: int = 3,
    dtype_bytes: int = 8,
) -> int:
    """The cache-capacity model of §2.1: tile volume x nbVar x live
    tensors (X, B, Y) x element size. Used by the autotuner to bound
    candidate tiles by the private L2 size.

    The volume is answered by the affine footprint engine
    (:func:`repro.analysis.affine.footprint.box_cells`) — the same
    decision procedure behind the verification gates — imported lazily
    to avoid the core↔analysis import cycle (the legality checker does
    the same)."""
    from repro.analysis.affine.footprint import box_cells

    return box_cells(tile_sizes) * nb_var * live_tensors * dtype_bytes


def tile_stencil_op(
    op: cfd.StencilOp,
    tile_sizes: Sequence[int],
    with_groups: bool = False,
    rewriter: Optional[PatternRewriter] = None,
    halo_extra: Sequence[Tuple[int, int]] = None,
) -> cfd.TiledLoopOp:
    """Rewrite ``op`` into a tiled loop of bounded stencil instances.

    ``halo_extra`` adds per-dimension ``(lo, hi)`` window inflation on top
    of the pattern halo — fusion uses it to make room for producers'
    access margins. Tile sizes must already be legal (the caller runs
    :func:`legalize_tile_sizes`).
    """
    pattern = op.pattern
    k = pattern.rank
    tile_sizes = [int(t) for t in tile_sizes]
    _check_block_legality(pattern, tile_sizes)
    if halo_extra is None:
        halo_extra = [(0, 0)] * k
    builder = rewriter or OpBuilder.before(op)
    if rewriter is not None:
        builder = rewriter

    x, b, y = op.x, op.b, op.y_init
    nv = op.nb_var

    # Pattern halos per space dimension.
    halo_lo = [max([0] + [-o[d] for o, _ in pattern.accesses]) for d in range(k)]
    halo_hi = [max([0] + [o[d] for o, _ in pattern.accesses]) for d in range(k)]

    # Space extents (dynamic-safe via tensor.dim) and write-region bounds.
    dims: List[Value] = []
    write_lo: List[Value] = []
    write_hi: List[Value] = []
    for d in range(k):
        n = _space_dim(builder, y, d)
        dims.append(n)
        if op.has_bounds:
            write_lo.append(op.bounds_lo[d])
            write_hi.append(op.bounds_hi[d])
        else:
            write_lo.append(arith.const_index(builder, halo_lo[d]))
            write_hi.append(
                arith.subi(builder, n, arith.const_index(builder, halo_hi[d]))
            )

    steps = [arith.const_index(builder, t) for t in tile_sizes]
    groups = None
    if with_groups:
        block_offsets = pattern.block_stencil_offsets(tile_sizes)
        if block_offsets:
            num_blocks = []
            for d in range(k):
                span = arith.subi(builder, write_hi[d], write_lo[d])
                num_blocks.append(_ceil_div(builder, span, steps[d]))
            gp = cfd.GetParallelBlocksOp.build(builder, num_blocks, block_offsets)
            groups = [gp.result(0), gp.result(1)]

    loop = cfd.TiledLoopOp.build(
        builder,
        write_lo,
        write_hi,
        steps,
        [x, b],
        [y],
        groups=groups,
        reverse=pattern.sweep == -1,
    )
    _stamp_analysis_attrs(op, loop, tile_sizes)
    body = OpBuilder.at_end(loop.body)
    ivs = loop.induction_vars
    x_arg, b_arg = loop.in_args
    y_arg = loop.out_args[0]

    zero_b = arith.const_index(body, 0)
    nv_b = arith.const_index(body, nv)

    # Per-dimension window and core bounds (all index arithmetic).
    window_lo: List[Value] = []
    window_size: List[Value] = []
    core_lo_local: List[Value] = []
    core_hi_local: List[Value] = []
    for d in range(k):
        n = _space_dim(body, y_arg, d)
        t = arith.const_index(body, tile_sizes[d])
        h_lo = arith.const_index(body, halo_lo[d] + halo_extra[d][0])
        h_hi = arith.const_index(body, halo_hi[d] + halo_extra[d][1])
        w_lo = arith.maxsi(body, arith.subi(body, ivs[d], h_lo), zero_b)
        core_end = arith.minsi(
            body, arith.addi(body, ivs[d], t), write_hi[d]
        )
        w_hi = arith.minsi(body, arith.addi(body, core_end, h_hi), n)
        window_lo.append(w_lo)
        window_size.append(arith.subi(body, w_hi, w_lo))
        core_lo_local.append(arith.subi(body, ivs[d], w_lo))
        core_hi_local.append(arith.subi(body, core_end, w_lo))

    slice_offsets = [zero_b] + window_lo
    slice_sizes = [nv_b] + window_size
    static = [nv] + [-1] * k
    x_s = tensor.ExtractSliceOp.build(
        body, x_arg, slice_offsets, slice_sizes, static_sizes=static
    ).result()
    b_s = tensor.ExtractSliceOp.build(
        body, b_arg, slice_offsets, slice_sizes, static_sizes=static
    ).result()
    y_s = tensor.ExtractSliceOp.build(
        body, y_arg, slice_offsets, slice_sizes, static_sizes=static
    ).result()

    inner = cfd.StencilOp.build(
        body,
        x_s,
        b_s,
        y_s,
        pattern,
        nv,
        bounds=core_lo_local + core_hi_local,
    )
    _clone_region_into(op, inner)
    _bump_tiling_level(op, inner)
    if "tv_id" in op.attributes:
        # Both the loop (the site root) and the inner stencil carry the
        # translation-validation tag: the validator finds the root, then
        # locates the per-tile op inside the body by the same id.
        inner.attributes["tv_id"] = op.attributes["tv_id"]

    if groups is not None:
        # Grouped (wavefront-parallel) loops write back only the tile
        # CORE. The halo window of a tile overlaps the cores of its
        # same-group neighbours, so a full-window write-back would race
        # under concurrent dispatch. The inner stencil's bounds restrict
        # writes to the core, so the halo cells of ``inner.result()``
        # hold exactly the values already present in ``y`` — dropping
        # them from the write-back is bit-identical sequentially.
        core_sizes = [
            arith.subi(body, core_hi_local[d], core_lo_local[d])
            for d in range(k)
        ]
        y_core = tensor.ExtractSliceOp.build(
            body,
            inner.result(),
            [zero_b] + core_lo_local,
            [nv_b] + core_sizes,
            static_sizes=static,
        ).result()
        y_next = tensor.InsertSliceOp.build(
            body, y_core, y_arg, [zero_b] + list(ivs), [nv_b] + core_sizes
        ).result()
    else:
        y_next = tensor.InsertSliceOp.build(
            body, inner.result(), y_arg, slice_offsets, slice_sizes
        ).result()
    cfd.CFDYieldOp.build(body, [y_next])

    if rewriter is not None:
        rewriter.replace_op(op, [loop.result()])
    else:
        op.result().replace_all_uses_with(loop.result())
        op.erase()
    return loop


def _space_dim(builder: OpBuilder, value: Value, d: int) -> Value:
    t: TensorType = value.type  # type: ignore[assignment]
    if t.shape[d + 1] != -1:
        return arith.const_index(builder, t.shape[d + 1])
    return tensor.DimOp.build(builder, value, d + 1).result()


def _ceil_div(builder: OpBuilder, a: Value, b: Value) -> Value:
    one = arith.const_index(builder, 1)
    return arith.floordivi(
        builder,
        arith.subi(builder, arith.addi(builder, a, b), one),
        b,
    )


def _clone_region_into(src: cfd.StencilOp, dst: cfd.StencilOp) -> None:
    """Copy the payload region from one stencil op to another."""
    mapping = {}
    for old_arg, new_arg in zip(src.body.arguments, dst.body.arguments):
        mapping[old_arg] = new_arg
    for inner_op in src.body.operations:
        dst.body.append(inner_op.clone(mapping))


def _stamp_analysis_attrs(
    src: cfd.StencilOp, loop: cfd.TiledLoopOp, tile_sizes: Sequence[int]
) -> None:
    """Leave copies of the stencil attributes (and the tile sizes) on the
    tiled loop, so the static analyzer (:mod:`repro.analysis`) can audit
    tile legality and wavefront groups even after the inner stencil op
    has been lowered away."""
    for key in ("stencil", "nbVar", "sweep", "allow_initial_reads", "tv_id"):
        if key in src.attributes:
            loop.attributes[key] = src.attributes[key]
    loop.attributes["tile_sizes"] = DenseIntElementsAttr(list(tile_sizes))


def _bump_tiling_level(src: Operation, dst: Operation) -> None:
    prev = src.attributes.get("tiling_level")
    level = prev.value + 1 if isinstance(prev, IntegerAttr) else 1
    dst.attributes["tiling_level"] = IntegerAttr(level)


def tiling_level(op: Operation) -> int:
    attr = op.attributes.get("tiling_level")
    return attr.value if isinstance(attr, IntegerAttr) else 0


class _TileStencilPattern(RewritePattern):
    op_name = "cfd.stencilOp"

    def __init__(self, tile_sizes, with_groups, max_level):
        self.tile_sizes = tile_sizes
        self.with_groups = with_groups
        self.max_level = max_level

    def match_and_rewrite(self, op, rewriter):
        if tiling_level(op) != self.max_level:
            return False
        sizes = legalize_tile_sizes(op.pattern, self.tile_sizes)
        tile_stencil_op(op, sizes, self.with_groups, rewriter=rewriter)
        return True


class TileStencilsPass(Pass):
    """Tile every ``cfd.stencilOp`` at nesting level ``level`` (0 = not
    yet tiled) with the given tile sizes, legalized per pattern."""

    def __init__(
        self,
        tile_sizes: Sequence[int],
        with_groups: bool = False,
        level: int = 0,
    ) -> None:
        self.tile_sizes = list(tile_sizes)
        self.with_groups = with_groups
        self.level = level
        self.name = f"tile-stencils<{self.tile_sizes}, groups={with_groups}>"

    def run(self, module) -> None:
        apply_patterns_greedily(
            module,
            [_TileStencilPattern(self.tile_sizes, self.with_groups, self.level)],
        )
