"""The end-to-end compilation pipeline: the ``StencilCompiler``.

Assembles the paper's transformations in their canonical order:

1. sub-domain tiling with wavefront groups (§2.3, §3.4);
2. producer/consumer fusion into the sub-domain loop (§2.2, §3.3);
3. cache tiling inside each sub-domain (§2.1);
4. producer fusion into the cache-tile loop (B recomputed per tile);
5. lowering with partial vectorization (§2.4, §3.5) or scalar lowering;
6. for the scalar configuration, structured ops (linalg.generic,
   faceIteratorOp) are also lowered to scalar loops so "no vectorization"
   means *no* vectorization anywhere, matching the ablation of §4.2.

The four ablation configurations of Fig. 13 map to options as:

========  =========================================================
 Tr1      ``parallel`` (sub-domain tiling + groups), no fusion, scalar
 Tr2      Tr1 + ``fuse`` + cache ``tile_sizes``
 Tr3      Tr1 + ``vectorize``
 Tr4      everything (the default production pipeline)
========  =========================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.codegen.executor import CompiledKernel, compile_function
from repro.core.fusion import FuseProducersPass
from repro.core.lowering import LowerStencilsPass, LowerStructuredPass
from repro.core.optimize import optimization_pipeline
from repro.core.scheduling import extract_schedule_stamps
from repro.core.tiling import TileStencilsPass
from repro.core.vectorization import VectorizeStencilsPass
from repro.ir import ModuleOp, PassManager


@dataclass
class CompileOptions:
    """Configuration of the code-generation strategy.

    Attributes
    ----------
    subdomain_sizes:
        Sub-domain (outer) tile sizes per space dimension; enables the
        sub-domain level. ``None`` disables it.
    tile_sizes:
        Cache-blocking (inner) tile sizes; legalized per stencil pattern
        (dimensions carrying negative dependence distances are forced to
        size 1 as in §2.1). ``None`` disables cache tiling.
    fuse:
        Pull structured producers (and pointwise consumers) into the
        tile loops, recomputing ``B`` per tile.
    vectorize:
        Vectorization factor ``VF``; ``0`` selects the scalar lowering
        everywhere (stencils *and* structured ops).
    parallel:
        Attach wavefront groups (``cfd.get_parallel_blocks``) to the
        sub-domain loop so independent sub-domains may run concurrently.
    opt_level:
        Midend optimization level (:mod:`repro.core.optimize`): ``0``
        disables the optimizer, ``1`` runs constant folding + DCE, ``2``
        (the default) adds CSE and loop-invariant code motion. All levels
        produce bit-identical numerics.
    use_cache:
        Consult the process-wide compiled-kernel cache
        (:mod:`repro.codegen.cache`) in :meth:`StencilCompiler.compile`;
        a hit skips the whole pass pipeline and emission.
    verify_each:
        Run the IR verifier between passes (on by default; benchmarks
        may disable it to measure pure compile time).
    check_level:
        Static-analysis gating (:mod:`repro.analysis`): ``"off"`` (the
        default) runs no semantic checks, ``"after-pipeline"`` analyzes
        the lowered module once at the end of the pass pipeline, and
        ``"after-every-pass"`` re-analyzes after each pass (the setting
        the lint CLI and the mutation tests use). Any error-severity
        diagnostic raises :class:`~repro.analysis.analyzer.AnalysisError`.
    validate_passes:
        Per-pass translation validation (:mod:`repro.analysis.tv`): the
        pipeline captures every stencil site's reference schedule before
        the first pass and re-checks dependence preservation after each
        pass, raising
        :class:`~repro.analysis.tv.TranslationValidationError` with a
        concrete witness when a pass miscompiles. Timed under
        ``"translation-validate"`` in the pass-manager report.
    verify_engine:
        Decision procedure of every analysis gate and of the translation
        validator: ``"auto"`` (symbolic affine engines first, silent
        fallback to enumeration), ``"symbolic"`` (affine forced, precise
        diagnostics on fallback), ``"enumerated"`` (legacy per-instance
        engines). ``None`` defers to the ``REPRO_VERIFY`` environment
        variable, then ``auto``.
    machine:
        Machine model preset name for every performance client — the
        static performance prover, the perf lint and the autotuner's
        static costing (see
        :data:`repro.machine.model.MACHINE_PRESETS`; ``"host"`` forces
        host calibration). ``None`` defers to the ``REPRO_MACHINE``
        environment variable, then the host-calibrated model. Part of
        the cache fingerprint like every other option.
    frontend_version:
        Version stamp of the frontend that produced the module
        (:data:`repro.frontend.FRONTEND_VERSION`;
        ``StencilProgram.compile`` fills it in). ``None`` for
        hand-built IR. Carried as an option field so the mechanical
        :meth:`cache_key` audit below folds it into the kernel-cache
        fingerprint — a frontend behaviour change can never alias a
        ``@stencil``-built kernel to a stale cached one.
    """

    subdomain_sizes: Optional[Tuple[int, ...]] = None
    tile_sizes: Optional[Tuple[int, ...]] = None
    fuse: bool = False
    vectorize: int = 8
    parallel: bool = False
    opt_level: int = 2
    use_cache: bool = True
    verify_each: bool = True
    check_level: str = "off"
    validate_passes: bool = False
    verify_engine: Optional[str] = None
    machine: Optional[str] = None
    frontend_version: Optional[str] = None

    def describe(self) -> str:
        parts = []
        if self.subdomain_sizes:
            parts.append(
                f"subdomains={'x'.join(map(str, self.subdomain_sizes))}"
                + ("+groups" if self.parallel else "")
            )
        if self.tile_sizes:
            parts.append(f"tiles={'x'.join(map(str, self.tile_sizes))}")
        if self.fuse:
            parts.append("fuse")
        parts.append(f"vf={self.vectorize}" if self.vectorize else "scalar")
        parts.append(f"O{self.opt_level}")
        return ",".join(parts)

    def cache_key(self) -> str:
        """The options component of the kernel-cache fingerprint.

        Built mechanically from *every* dataclass field except
        ``use_cache`` (which selects whether the cache is consulted but
        cannot change what is compiled), so a newly added option can
        never silently alias two distinct configurations to one cached
        kernel. ``describe()`` stays human-oriented and lossy; this is
        the lossless form.
        """
        parts = []
        for f in dataclasses.fields(self):
            if f.name == "use_cache":
                continue
            parts.append(f"{f.name}={getattr(self, f.name)!r}")
        return ";".join(parts)


#: The ablation configurations of §4.2 (Fig. 13), parameterized by sizes.
def ablation_options(
    name: str,
    subdomain_sizes: Tuple[int, ...],
    tile_sizes: Tuple[int, ...],
    vf: int = 8,
) -> CompileOptions:
    """Tr1..Tr4 of Fig. 13."""
    configs = {
        "Tr1": CompileOptions(
            subdomain_sizes=subdomain_sizes, parallel=True, vectorize=0
        ),
        "Tr2": CompileOptions(
            subdomain_sizes=subdomain_sizes,
            tile_sizes=tile_sizes,
            fuse=True,
            parallel=True,
            vectorize=0,
        ),
        "Tr3": CompileOptions(
            subdomain_sizes=subdomain_sizes, parallel=True, vectorize=vf
        ),
        "Tr4": CompileOptions(
            subdomain_sizes=subdomain_sizes,
            tile_sizes=tile_sizes,
            fuse=True,
            parallel=True,
            vectorize=vf,
        ),
    }
    if name not in configs:
        raise ValueError(f"unknown ablation configuration {name!r}")
    return configs[name]


class StencilCompiler:
    """Drives a module through the full pipeline down to a compiled
    Python/NumPy kernel."""

    def __init__(self, options: Optional[CompileOptions] = None) -> None:
        self.options = options or CompileOptions()
        self.pass_manager: Optional[PassManager] = None

    def build_pipeline(
        self, skip_gate: bool = False, skip_validation: bool = False
    ) -> PassManager:
        """Assemble the pass pipeline.

        ``skip_gate`` / ``skip_validation`` drop the analysis gate and
        the translation validator even when the options request them —
        :meth:`compile` passes these when the certificate memo already
        holds a clean record for the module's fingerprint.
        """
        o = self.options
        gate = None
        if o.check_level != "off":
            # Imported lazily: repro.analysis depends on the lowering and
            # tiling passes this module also imports.
            from repro.analysis.analyzer import CHECK_LEVELS, AnalysisGate

            if o.check_level not in CHECK_LEVELS:
                raise ValueError(
                    f"unknown check_level {o.check_level!r}; "
                    f"expected one of {CHECK_LEVELS}"
                )
            if not skip_gate:
                gate = AnalysisGate(fail_fast=True, engine=o.verify_engine)
        validator = None
        if o.validate_passes and not skip_validation:
            from repro.analysis.tv import TranslationValidator

            validator = TranslationValidator(
                fail_fast=True, engine=o.verify_engine
            )
        pm = PassManager(
            verify_each=o.verify_each,
            gate=gate,
            gate_each=o.check_level == "after-every-pass",
            validator=validator,
        )
        level = 0
        if o.subdomain_sizes:
            pm.add(
                TileStencilsPass(
                    o.subdomain_sizes, with_groups=o.parallel, level=level
                )
            )
            level += 1
            if o.fuse:
                pm.add(FuseProducersPass())
        if o.tile_sizes:
            pm.add(TileStencilsPass(o.tile_sizes, level=level))
            level += 1
            if o.fuse:
                pm.add(FuseProducersPass(consumers=False))
        if o.vectorize:
            pm.add(VectorizeStencilsPass(o.vectorize))
        else:
            pm.add(LowerStencilsPass())
            pm.add(LowerStructuredPass())
        for opt_pass in optimization_pipeline(o.opt_level):
            pm.add(opt_pass)
        return pm

    def lower(
        self,
        module: ModuleOp,
        skip_gate: bool = False,
        skip_validation: bool = False,
    ) -> ModuleOp:
        """Run the transformation pipeline in place; returns the module."""
        self.pass_manager = self.build_pipeline(
            skip_gate=skip_gate, skip_validation=skip_validation
        )
        self.pass_manager.run(module)
        return module

    def compile(self, module: ModuleOp, entry: str = "kernel") -> CompiledKernel:
        """Lower and compile; the module is consumed (transformed).

        With ``options.use_cache`` (the default) the *unlowered* module is
        fingerprinted against the process-wide kernel cache first: a hit
        returns the cached kernel without running any pass, so repeated
        configurations — autotuner sweeps, the Fig. 11-13 benches — skip
        the pipeline and emission entirely. On a hit the module is
        returned untransformed.

        Verification is pay-as-you-go: the same fingerprint also keys
        the process-wide certificate memo
        (:mod:`repro.codegen.certificates`). When the memo already holds
        a clean record covering the requested ``check_level`` /
        ``validate_passes``, the gate and the validator are skipped even
        though the kernel cache missed — re-verifying an
        already-certified module proves nothing new.

        With ``options.parallel`` the lowered module must additionally
        pass the race analyzer before the kernel is certified for
        multi-threaded wavefront dispatch; an IP-diagnostic leaves the
        kernel uncertified (the runtime then executes its groups
        sequentially and records RS011). The static wavefront schedules
        are stamped onto ``kernel.schedule``.
        """
        o = self.options
        fingerprint = None
        cert = None
        memo = None
        if o.use_cache or o.parallel or o.validate_passes or o.check_level != "off":
            from repro.codegen.cache import module_fingerprint
            from repro.codegen.certificates import default_memo

            fingerprint = module_fingerprint(module, entry, o.cache_key())
            memo = default_memo()
            cert = memo.get(fingerprint)
        if o.use_cache:
            from repro.codegen.cache import default_cache

            cache = default_cache()
            kernel = cache.get(fingerprint)
            if kernel is not None:
                return kernel
        skip_gate = (
            o.check_level != "off"
            and cert is not None
            and cert.covers_gate(o.check_level)
        )
        skip_tv = o.validate_passes and cert is not None and cert.validated
        self.lower(module, skip_gate=skip_gate, skip_validation=skip_tv)
        kernel = compile_function(module, entry)
        parallel_clean = None
        if o.parallel:
            kernel.schedule = extract_schedule_stamps(module)
            if cert is not None and cert.parallel_clean is not None:
                parallel_clean = cert.parallel_clean
            elif o.check_level != "off":
                # The gate already analyzed this module (or a certificate
                # says it did) and raised on any error — clean by proof.
                parallel_clean = True
            else:
                report = self._race_check(module)
                parallel_clean = not report.has_errors
                kernel.parallel_diagnostics = report.errors
            if parallel_clean:
                kernel.certify_parallel()
        if memo is not None:
            memo.record(
                fingerprint,
                check_level=None if skip_gate else o.check_level,
                validated=o.validate_passes and not skip_tv,
                parallel_clean=parallel_clean,
            )
        if o.use_cache:
            cache.put(fingerprint, kernel)
        return kernel

    @staticmethod
    def _race_check(lowered: ModuleOp):
        """The mandatory parallel legality gate: the PR-2 analyzers on
        the lowered module (attribute walks only — the expensive probe
        cross-check and the memory sweep stay out of the hot path)."""
        from repro.analysis.analyzer import analyze_module

        return analyze_module(lowered, cross_check=False, memory=False)
