"""Stencil patterns: the static access structure of Eq. (2).

A :class:`StencilPattern` is a k-dimensional array with entries in
{-1, 0, 1}:

* ``-1`` — the offset is in **L**: the update reads the *current*
  iteration's value (an intra-iteration dependence);
* ``1`` — the offset is in **U**: the update reads the *previous*
  iteration's value;
* ``0`` — the offset is not accessed.

The paper restricts L to lexicographically negative offsets so that the
plain lexicographic traversal is a valid schedule (forward sweep). For the
LU-SGS backward sweep the signs are inverted and the traversal is
reversed (§4.3), which this class models with ``sweep = -1``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Offset = Tuple[int, ...]


def _lex_negative(offset: Offset) -> bool:
    """True iff ``offset`` is lexicographically smaller than zero."""
    for c in offset:
        if c < 0:
            return True
        if c > 0:
            return False
    return False


def _lex_positive(offset: Offset) -> bool:
    return _lex_negative(tuple(-c for c in offset))


class StencilPattern:
    """A validated in-place stencil pattern.

    Parameters
    ----------
    entries:
        Nested lists of -1/0/1 describing the pattern box, centered: a
        ``(2*s_1+1) x ... x (2*s_k+1)`` array whose middle element is the
        center (offset 0), as in Fig. 4 of the paper.
    sweep:
        ``1`` for a forward (lexicographic) sweep, ``-1`` for a backward
        sweep. L offsets must be lexicographically negative for the
        forward sweep and positive for the backward sweep.
    allow_initial_reads:
        Permit L offsets on the *anti*-dependence side. Such reads hit Y
        cells the traversal has not written yet, observing the tensor's
        *initial* content — exactly what the backward sweep of symmetric
        Gauss-Seidel / LU-SGS needs (its "lower" neighbours must yield
        the forward sweep's result, which is Y's initial value there).
        Deterministic and well-defined; the scheduler and tiler treat
        these reads as anti-dependences (the reader must run before the
        writer).
    """

    def __init__(
        self, entries, sweep: int = 1, allow_initial_reads: bool = False
    ) -> None:
        if sweep not in (1, -1):
            raise ValueError(f"sweep must be 1 or -1, got {sweep}")
        self.entries = entries
        self.sweep = sweep
        self.allow_initial_reads = allow_initial_reads
        self.shape = _shape_of(entries)
        if any(s % 2 == 0 for s in self.shape):
            raise ValueError(
                f"pattern extents must be odd (centered), got {self.shape}"
            )
        self.rank = len(self.shape)
        self.radii: Tuple[int, ...] = tuple(s // 2 for s in self.shape)
        self.l_offsets: List[Offset] = []
        self.u_offsets: List[Offset] = []
        #: All non-zero offsets in row-major pattern order, paired with
        #: their entry value; this fixes the block-argument order of
        #: ``cfd.stencilOp``.
        self.accesses: List[Tuple[Offset, int]] = []
        for position, value in _enumerate_entries(entries):
            offset = tuple(p - r for p, r in zip(position, self.radii))
            if value == 0:
                continue
            if value not in (-1, 1):
                raise ValueError(
                    f"pattern entries must be -1, 0 or 1; got {value} at {position}"
                )
            if all(c == 0 for c in offset):
                raise ValueError("the center of the pattern must be 0")
            self.accesses.append((offset, value))
            if value == -1:
                self.l_offsets.append(offset)
            else:
                self.u_offsets.append(offset)
        on_dep_side = _lex_negative if sweep == 1 else _lex_positive
        #: L offsets carrying true intra-iteration dependences.
        self.dependent_l_offsets: List[Offset] = [
            o for o in self.l_offsets if on_dep_side(o)
        ]
        #: L offsets on the anti-dependence side: reads of initial Y
        #: content (only with ``allow_initial_reads``).
        self.initial_l_offsets: List[Offset] = [
            o for o in self.l_offsets if not on_dep_side(o)
        ]
        self._validate_schedule()

    # ---- construction ----------------------------------------------------

    @classmethod
    def from_offsets(
        cls,
        rank: int,
        l_offsets: Iterable[Offset] = (),
        u_offsets: Iterable[Offset] = (),
        sweep: int = 1,
        allow_initial_reads: bool = False,
    ) -> "StencilPattern":
        """Build a pattern box from explicit L and U offset lists."""
        l_offsets = [tuple(o) for o in l_offsets]
        u_offsets = [tuple(o) for o in u_offsets]
        all_offsets = l_offsets + u_offsets
        if not all_offsets:
            raise ValueError("a stencil needs at least one offset")
        for o in all_offsets:
            if len(o) != rank:
                raise ValueError(f"offset {o} does not have rank {rank}")
        radii = [
            max(max(abs(o[d]) for o in all_offsets), 0) for d in range(rank)
        ]
        radii = [max(r, 1) for r in radii]
        shape = [2 * r + 1 for r in radii]

        def build(level: int, prefix: Tuple[int, ...]):
            if level == rank:
                offset = tuple(p - r for p, r in zip(prefix, radii))
                if offset in l_offsets:
                    return -1
                if offset in u_offsets:
                    return 1
                return 0
            return [build(level + 1, prefix + (i,)) for i in range(shape[level])]

        return cls(build(0, ()), sweep=sweep, allow_initial_reads=allow_initial_reads)

    def inverted(self) -> "StencilPattern":
        """The mirror pattern for the opposite sweep direction (§4.3).

        Every entry moves to the mirrored offset and the sweep direction
        flips; the L/U roles are preserved relative to the new traversal.
        """
        return StencilPattern.from_offsets(
            self.rank,
            l_offsets=[tuple(-c for c in o) for o in self.l_offsets],
            u_offsets=[tuple(-c for c in o) for o in self.u_offsets],
            sweep=-self.sweep,
            allow_initial_reads=self.allow_initial_reads,
        )

    # ---- queries -----------------------------------------------------------

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    @property
    def is_in_place(self) -> bool:
        """True iff the L subset is non-empty (a true Gauss-Seidel)."""
        return bool(self.l_offsets)

    def interior_bounds(self, space_shape: Sequence[int]) -> List[Tuple[int, int]]:
        """Per-dimension ``[lo, hi)`` bounds where no access overflows."""
        if len(space_shape) != self.rank:
            raise ValueError(
                f"space rank {len(space_shape)} != pattern rank {self.rank}"
            )
        bounds = []
        for d, n in enumerate(space_shape):
            lo = max([0] + [-o[d] for o, _ in self.accesses])
            hi_margin = max([0] + [o[d] for o, _ in self.accesses])
            bounds.append((lo, n - hi_margin))
        return bounds

    def schedule_relevant_offsets(self) -> List[Offset]:
        """Offsets constraining the tile execution order, all mapped onto
        the dependence side:

        * true dependences: the dependent L offsets themselves;
        * anti-dependences from initial reads: the reader must execute
          before the writer, i.e. the *negated* initial-read offset acts
          as a predecessor edge.
        """
        offsets = set(self.dependent_l_offsets)
        offsets.update(
            tuple(-c for c in o) for o in self.initial_l_offsets
        )
        return sorted(offsets)

    def negative_distance_dims(self) -> List[int]:
        """Dimensions along which some L dependence distance is negative.

        These are the dimensions whose tile size must be forced to 1
        (§2.1): a dependence distance is ``-r`` for an L offset ``r``, so
        a *positive* component of an L offset is a negative distance.
        For the forward sweep L offsets are lexicographically negative,
        hence a positive component can only appear after a negative one —
        e.g. ``(-1, 1)``, the paper's example.

        For the backward sweep, the traversal is reversed so signs flip.
        Anti-dependences from initial reads count with their negated
        offsets.
        """
        dims = []
        for d in range(self.rank):
            for o in self.schedule_relevant_offsets():
                component = o[d] * self.sweep
                if component > 0:
                    dims.append(d)
                    break
        return dims

    def block_stencil_offsets(self, tile_sizes: Sequence[int]) -> List[Offset]:
        """Sub-domain-level dependence offsets derived from L (§2.3, Fig. 1).

        For each corner of a tile and each schedule-relevant offset,
        determine the relative tile that the accessed element can fall
        into. Tiles are hyperrectangular with the given sizes, so the
        set of possible block offsets along dimension d for an element
        offset ``o_d`` is ``{floor((c + o_d) / T_d) for corners
        c in {0, T_d - 1}}``. Returns the non-zero block offsets (the
        block-level L pattern).
        """
        if len(tile_sizes) != self.rank:
            raise ValueError("tile_sizes rank mismatch")
        blocks = set()
        for o in self.schedule_relevant_offsets():
            per_dim: List[List[int]] = []
            for d, t in enumerate(tile_sizes):
                lo = (0 + o[d]) // t
                hi = (t - 1 + o[d]) // t
                per_dim.append(sorted(set((lo, hi))))
            for combo in _cartesian(per_dim):
                if any(c != 0 for c in combo):
                    blocks.add(tuple(combo))
        return sorted(blocks)

    def to_nested_lists(self):
        """The raw -1/0/1 box, for the ``stencil`` attribute."""
        return _copy_nested(self.entries)

    # ---- validation ----------------------------------------------------------

    def _validate_schedule(self) -> None:
        """Enforce the paper's lexicographic ordering restriction on L
        (unless initial reads are explicitly allowed)."""
        if self.allow_initial_reads:
            return
        for o in self.l_offsets:
            if self.sweep == 1 and not _lex_negative(o):
                raise ValueError(
                    f"L offset {o} is not lexicographically negative: the "
                    "forward lexicographic traversal would read a future value"
                )
            if self.sweep == -1 and not _lex_positive(o):
                raise ValueError(
                    f"L offset {o} is not lexicographically positive: the "
                    "backward traversal would read a future value"
                )

    def __repr__(self) -> str:
        return (
            f"StencilPattern(rank={self.rank}, |L|={len(self.l_offsets)}, "
            f"|U|={len(self.u_offsets)}, sweep={self.sweep})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StencilPattern)
            and self.entries == other.entries
            and self.sweep == other.sweep
            and self.allow_initial_reads == other.allow_initial_reads
        )

    def __hash__(self) -> int:
        return hash((repr(self.entries), self.sweep, self.allow_initial_reads))


def _shape_of(entries) -> Tuple[int, ...]:
    if isinstance(entries, int):
        return ()
    entries = list(entries)
    if not entries:
        raise ValueError("empty pattern")
    sub = _shape_of(entries[0])
    for e in entries[1:]:
        if _shape_of(e) != sub:
            raise ValueError("ragged pattern")
    return (len(entries),) + sub


def _enumerate_entries(entries, prefix: Tuple[int, ...] = ()):
    if isinstance(entries, int):
        yield prefix, entries
        return
    for i, e in enumerate(entries):
        yield from _enumerate_entries(e, prefix + (i,))


def _copy_nested(entries):
    if isinstance(entries, int):
        return entries
    return [_copy_nested(e) for e in entries]


def _cartesian(per_dim: List[List[int]]):
    if not per_dim:
        yield ()
        return
    for head in per_dim[0]:
        for tail in _cartesian(per_dim[1:]):
            yield (head,) + tail


# ---------------------------------------------------------------------------
# The patterns used in the paper's evaluation (§4.1, Fig. 8).
# ---------------------------------------------------------------------------


def gauss_seidel_5pt_2d() -> StencilPattern:
    """(a) 2D Gauss-Seidel, 5 points, order 1: cross in a 3x3 box."""
    return StencilPattern([[0, -1, 0], [-1, 0, 1], [0, 1, 0]])


def gauss_seidel_9pt_2d() -> StencilPattern:
    """(b) 2D Gauss-Seidel, 9 points, order 1: full 3x3 box.

    Note the L offset (-1, 1): a negative dependence distance along the
    second dimension, which forces tile size 1 there (§2.1).
    """
    return StencilPattern([[-1, -1, -1], [-1, 0, 1], [1, 1, 1]])


def gauss_seidel_9pt_2nd_order_2d() -> StencilPattern:
    """(c) 2D Gauss-Seidel, 9 points, order 2: cross in a 5x5 box
    (the PolyBench "seidel" access structure, split into L and U)."""
    return StencilPattern.from_offsets(
        2,
        l_offsets=[(-2, 0), (-1, 0), (0, -2), (0, -1)],
        u_offsets=[(0, 1), (0, 2), (1, 0), (2, 0)],
    )


def gauss_seidel_6pt_3d() -> StencilPattern:
    """(d) 3D Gauss-Seidel, 6 points, order 1 (the heat-equation solver)."""
    return StencilPattern.from_offsets(
        3,
        l_offsets=[(-1, 0, 0), (0, -1, 0), (0, 0, -1)],
        u_offsets=[(1, 0, 0), (0, 1, 0), (0, 0, 1)],
    )


def jacobi_5pt_2d() -> StencilPattern:
    """5-point Jacobi: the out-of-place variant (empty L) used in §4.1."""
    return StencilPattern.from_offsets(
        2, u_offsets=[(-1, 0), (0, -1), (0, 1), (1, 0)]
    )


def sor_5pt_2d() -> StencilPattern:
    """SOR has the same access pattern as Gauss-Seidel; the relaxation
    factor lives in the stencil body, not the pattern."""
    return gauss_seidel_5pt_2d()
