"""Frontend helpers: building stencil programs in the cfd dialect.

These are the entry points a solver author uses: describe the stencil
pattern, provide the payload (the ``D`` and ``g`` of Eq. 2) as a small
builder callback, and get back a module containing a kernel function
ready for the compilation pipeline.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.stencil import StencilPattern
from repro.dialects import arith, cfd, func, scf
from repro.ir import ModuleOp, OpBuilder
from repro.ir.types import FunctionType, TensorType, f64
from repro.ir.values import Value

#: Payload callback: given a builder positioned in the stencil body and
#: the block arguments (per-access values then center values, ``nv`` each),
#: return ``(d, contributions)`` where ``contributions`` has one value per
#: block argument (per-access then center, ``nv`` each).
StencilBody = Callable[[OpBuilder, List[Value]], Tuple[Value, List[Value]]]


def identity_body(d: float) -> StencilBody:
    """The classic Gauss-Seidel payload: ``Y = (B + sum(neighbors)) / d``.

    Neighbor arguments contribute themselves; the center contributes 0.
    With ``d = num_accesses`` and ``B = 0`` this averages the neighbors.
    """

    def body(builder: OpBuilder, args: List[Value]) -> Tuple[Value, List[Value]]:
        d_val = arith.const_f64(builder, d)
        zero = arith.const_f64(builder, 0.0)
        n_neighbor_args = len(args) - _center_count(args)
        contributions = list(args[:n_neighbor_args])
        contributions += [zero] * _center_count(args)
        return d_val, contributions

    return body


def weighted_body(weights: Sequence[float], d: float) -> StencilBody:
    """Per-access scalar weights: ``Y = (B + sum_a w_a * value_a) / d``.

    ``weights`` has one entry per access (L then U in pattern order) and
    applies to every variable of that access; the center contributes 0.
    """

    def body(builder: OpBuilder, args: List[Value]) -> Tuple[Value, List[Value]]:
        d_val = arith.const_f64(builder, d)
        zero = arith.const_f64(builder, 0.0)
        nv = _center_count(args)
        n_access = (len(args) - nv) // nv
        if len(weights) != n_access:
            raise ValueError(
                f"{len(weights)} weights for {n_access} stencil accesses"
            )
        contributions = []
        for a in range(n_access):
            w = arith.const_f64(builder, weights[a])
            for v in range(nv):
                contributions.append(arith.mulf(builder, w, args[a * nv + v]))
        contributions += [zero] * nv
        return d_val, contributions

    return body


def center_weighted_body(d: float, center_coeff: float) -> StencilBody:
    """Bare neighbour contributions plus a weighted center:
    ``Y = (B + sum(neighbors) + center_coeff * x0) / d``.

    The shape SOR folds into (see :func:`sor_body`), exposed directly so
    frontends that infer a weighted center read can emit the exact same
    body.
    """

    def body(builder: OpBuilder, args: List[Value]) -> Tuple[Value, List[Value]]:
        nv = _center_count(args)
        d_eff = arith.const_f64(builder, d)
        coeff = arith.const_f64(builder, center_coeff)
        contributions = list(args[: len(args) - nv])
        for v in range(nv):
            center = args[len(args) - nv + v]
            contributions.append(arith.mulf(builder, coeff, center))
        return d_eff, contributions

    return body


def sor_body(omega: float, d: float) -> StencilBody:
    """Successive Overrelaxation: blend the Gauss-Seidel update with the
    previous iterate: ``Y = (1-w) * X + w * (B + sum(neighbors)) / d``.

    Folded into the (d, contributions) form:
    ``Y = (B + sum(w/d' ...) + (1-w) d'' x0 ...)``; concretely we yield
    ``d' = d / omega`` and center contribution ``(1 - omega) * d/omega * x0``
    so that ``(B + sum(n) + (1-omega)*(d/omega)*x0) * omega/d =
    omega*(B + sum(n))/d + (1-omega)*x0``.
    """
    return center_weighted_body(d / omega, (1.0 - omega) * d / omega)


def _center_count(args: Sequence[Value]) -> int:
    """The trailing center arguments: nv values.

    The argument list has (num_accesses + 1) * nv entries; callers of the
    helpers above don't know nv, so it is recovered from the attached
    stencil op via the builder context. To stay self-contained we store
    nv on the list object when building; fall back to 1.
    """
    return getattr(args, "nb_var", 1)


class _ArgList(list):
    """A list of block arguments carrying the ``nb_var`` of its stencil."""

    def __init__(self, values, nb_var: int) -> None:
        super().__init__(values)
        self.nb_var = nb_var


def attach_body(op: cfd.StencilOp, body_fn: StencilBody) -> None:
    """Populate a ``cfd.stencilOp`` region from a payload callback."""
    builder = OpBuilder.at_end(op.body)
    args = _ArgList(op.body.arguments, op.nb_var)
    d_val, contributions = body_fn(builder, args)
    if len(contributions) != len(args):
        raise ValueError(
            f"stencil body produced {len(contributions)} contributions for "
            f"{len(args)} arguments"
        )
    cfd.CFDYieldOp.build(builder, [d_val] + list(contributions))


def field_type(nv: int, space_shape: Sequence[int]) -> TensorType:
    """The tensor type of a multi-field: ``tensor<nv x n_1 x ... x f64>``."""
    return TensorType([nv] + list(space_shape), f64)


def build_stencil_kernel(
    pattern: StencilPattern,
    space_shape: Sequence[int],
    body_fn: StencilBody,
    nb_var: int = 1,
    iterations: int = 1,
    name: str = "kernel",
    module: Optional[ModuleOp] = None,
) -> ModuleOp:
    """Build ``func @name(X, B, Y0) -> Y`` running ``iterations`` in-place
    stencil sweeps.

    Each sweep consumes the previous sweep's result as both ``X`` and the
    initial ``Y`` (the standard iterative structure: Y becomes the next
    X). The returned module is ready for :class:`StencilCompiler`.
    """
    module = module or ModuleOp.create()
    builder = OpBuilder.at_end(module.body)
    t = field_type(nb_var, space_shape)
    fn = func.FuncOp.build(builder, name, FunctionType([t, t, t], [t]))
    fb = OpBuilder.at_end(fn.body)
    x0, b, y0 = fn.arguments
    if iterations == 1:
        op = cfd.StencilOp.build(fb, x0, b, y0, pattern, nb_var)
        attach_body(op, body_fn)
        func.ReturnOp.build(fb, [op.result()])
        return module
    lb = arith.const_index(fb, 0)
    ub = arith.const_index(fb, iterations)
    one = arith.const_index(fb, 1)
    loop = scf.ForOp.build(fb, lb, ub, one, [x0])
    lb_builder = OpBuilder.at_end(loop.body)
    current = loop.iter_args[0]
    op = cfd.StencilOp.build(lb_builder, current, b, current, pattern, nb_var)
    attach_body(op, body_fn)
    scf.YieldOp.build(lb_builder, [op.result()])
    func.ReturnOp.build(fb, [loop.result()])
    return module


def build_symmetric_sweep_kernel(
    pattern: StencilPattern,
    space_shape: Sequence[int],
    body_fn: StencilBody,
    nb_var: int = 1,
    name: str = "symmetric_kernel",
) -> ModuleOp:
    """A forward sweep followed by a backward sweep (the LU-SGS structure
    of §4.3): the backward stencil uses the sign-inverted pattern and the
    ``sweep = -1`` attribute."""
    module = ModuleOp.create()
    builder = OpBuilder.at_end(module.body)
    t = field_type(nb_var, space_shape)
    fn = func.FuncOp.build(builder, name, FunctionType([t, t, t], [t]))
    fb = OpBuilder.at_end(fn.body)
    x0, b, y0 = fn.arguments
    forward = cfd.StencilOp.build(fb, x0, b, y0, pattern, nb_var)
    attach_body(forward, body_fn)
    backward = cfd.StencilOp.build(
        fb, forward.result(), b, forward.result(), pattern.inverted(), nb_var
    )
    attach_body(backward, body_fn)
    func.ReturnOp.build(fb, [backward.result()])
    return module
