"""Producer/consumer fusion after tiling (§2.2, §3.3).

Two rewrites, both operating on ``cfd.tiled_loop``:

* **Producer fusion** — when a loop input (typically the ``B`` tensor of
  Eq. 2) is produced by a structured operation (``linalg.generic``,
  ``linalg.fill`` or ``cfd.faceIteratorOp``), the producer is pulled into
  the loop body and recomputed *per tile* on the tile's halo-inclusive
  window. Redundant computation occurs across tile boundaries, exactly
  the recompute-at-tile-level strategy the paper selects for ``B``.
  Legality: the tile window's core inset (the stencil pattern halo) must
  cover the producer's own access halo, so every core cell sees fully
  computed producer values.

* **Consumer fusion** — a *pointwise* ``linalg.generic`` consuming the
  loop's result (the temperature update of the heat solver, Fig. 10) is
  pulled in and applied to each tile's core region, its init tensor
  becoming an extra loop-carried output. Legality: the consumer must be
  pointwise (zero offsets) and its iteration margins must cover the
  stencil's write margins so the union of tile cores is exactly its
  global domain.

Both rewrites preserve wavefront groups and sweep direction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dialects import arith, cfd, tensor
from repro.dialects.linalg import FillOp, GenericOp
from repro.ir import Operation, Pass
from repro.ir.attributes import StringAttr
from repro.ir.builder import OpBuilder
from repro.ir.rewriter import PatternRewriter, RewritePattern, apply_patterns_greedily
from repro.ir.types import TensorType
from repro.ir.values import OpResult, Value

_FUSABLE_PRODUCERS = ("linalg.generic", "linalg.fill", "cfd.faceIteratorOp")


def _producer_halo(op: Operation) -> List[Tuple[int, int]]:
    """Access halo of a fusable producer, per tensor dimension."""
    if isinstance(op, GenericOp):
        return op.halo()
    if op.name == "cfd.faceIteratorOp":
        rank = op.operand(0).type.rank  # type: ignore[union-attr]
        axis = op.attributes["axis"].value + 1  # space axis -> tensor dim
        return [(1, 1) if d == axis else (0, 0) for d in range(rank)]
    if isinstance(op, FillOp):
        rank = op.operand(1).type.rank  # type: ignore[union-attr]
        return [(0, 0)] * rank
    raise ValueError(f"{op.name} is not a fusable producer")


def _find_direct_stencil(loop: cfd.TiledLoopOp) -> Optional[cfd.StencilOp]:
    for op in loop.body.operations:
        if isinstance(op, cfd.StencilOp):
            return op
    return None


def _stencil_halos(stencil: cfd.StencilOp) -> List[Tuple[int, int]]:
    pattern = stencil.pattern
    halos = []
    for d in range(pattern.rank):
        lo = max([0] + [-o[d] for o, _ in pattern.accesses])
        hi = max([0] + [o[d] for o, _ in pattern.accesses])
        halos.append((lo, hi))
    return halos


def _clone_loop(
    builder: OpBuilder,
    loop: cfd.TiledLoopOp,
    new_ins: List[Value],
    new_outs: List[Value],
):
    """A fresh tiled loop with the same control structure; returns the new
    loop plus a value mapping pre-seeded with the induction variables."""
    groups = loop.group_operands
    new_loop = cfd.TiledLoopOp.build(
        builder,
        loop.lbs,
        loop.ubs,
        loop.steps,
        new_ins,
        new_outs,
        groups=list(groups) if groups else None,
        reverse=loop.reverse,
    )
    # Preserve everything beyond the structural attributes build() sets —
    # in particular the stencil/tile_sizes copies the tiling pass stamps
    # for the static analyzer.
    for key, attr in loop.attributes.items():
        new_loop.attributes.setdefault(key, attr)
    mapping = {}
    for old, new in zip(loop.induction_vars, new_loop.induction_vars):
        mapping[old] = new
    return new_loop, mapping


class FuseProducerPattern(RewritePattern):
    """Pull structured producers of loop inputs into the loop body."""

    op_name = "cfd.tiled_loop"

    def match_and_rewrite(self, loop: cfd.TiledLoopOp, rewriter: PatternRewriter):
        stencil = _find_direct_stencil(loop)
        if stencil is None:
            return False
        for in_index, in_val in enumerate(loop.ins):
            if not isinstance(in_val, OpResult):
                continue
            producer = in_val.op
            if producer.name not in _FUSABLE_PRODUCERS:
                continue
            if producer.parent is not loop.parent:
                continue
            reason = self._halo_reject_reason(stencil, producer)
            if reason is not None:
                # Record the silent rejection on the loop; the analyzer
                # surfaces it as an informational IP016 diagnostic.
                loop.attributes["fusion_rejected"] = StringAttr(
                    f"producer {producer.name!r} of input #{in_index} "
                    f"not fused: {reason}"
                )
                continue
            self._fuse(loop, in_index, producer, rewriter)
            return True
        return False

    @staticmethod
    def _halo_reject_reason(
        stencil: cfd.StencilOp, producer: Operation
    ) -> Optional[str]:
        """Why the producer cannot be recomputed per tile (None = legal)."""
        p_halo = _producer_halo(producer)
        if any(lo or hi for lo, hi in p_halo[:1]):
            return (
                f"its access halo {p_halo[0]} touches the variable "
                "dimension, which tile windows never extend over"
            )
        s_halo = _stencil_halos(stencil)
        for d, ((p_lo, p_hi), (s_lo, s_hi)) in enumerate(
            zip(p_halo[1:], s_halo)
        ):
            if p_lo > s_lo or p_hi > s_hi:
                return (
                    f"its access halo ({p_lo}, {p_hi}) along space "
                    f"dimension {d} exceeds the stencil halo "
                    f"({s_lo}, {s_hi}), so tile cores would read "
                    "producer cells the window never computes"
                )
        return None

    @staticmethod
    def _halo_ok(stencil: cfd.StencilOp, producer: Operation) -> bool:
        return (
            FuseProducerPattern._halo_reject_reason(stencil, producer) is None
        )

    def _fuse(
        self,
        loop: cfd.TiledLoopOp,
        in_index: int,
        producer: Operation,
        rewriter: PatternRewriter,
    ) -> None:
        old_ins = loop.ins
        new_ins = (
            old_ins[:in_index]
            + list(producer.operands)
            + old_ins[in_index + 1 :]
        )
        new_loop, mapping = _clone_loop(rewriter, loop, new_ins, loop.outs)
        k = loop.rank
        # Map untouched in args and all out args.
        new_in_args = new_loop.in_args
        producer_args = new_in_args[in_index : in_index + producer.num_operands]
        j = 0
        for i, old_arg in enumerate(loop.in_args):
            if i == in_index:
                j += producer.num_operands
                continue
            mapping[old_arg] = new_in_args[j]
            j += 1
        for old_arg, new_arg in zip(loop.out_args, new_loop.out_args):
            mapping[old_arg] = new_arg
        fused_arg = loop.in_args[in_index]
        body = OpBuilder.at_end(new_loop.body)
        for op in loop.body.operations:
            if (
                op.name == "tensor.extract_slice"
                and op.operand(0) is fused_arg
            ):
                offs = [mapping.get(v, v) for v in op.offsets]
                sizes = [mapping.get(v, v) for v in op.sizes]
                static = list(op.result().type.shape)
                local_operands = []
                for operand, arg in zip(producer.operands, producer_args):
                    if isinstance(operand.type, TensorType):
                        local = tensor.ExtractSliceOp.build(
                            body, arg, offs, sizes, static_sizes=static
                        ).result()
                    else:
                        local = arg
                    local_operands.append(local)
                # A fresh instance on the tile: same payload, the result
                # type follows the (sliced) init operand.
                clone = body.create(
                    producer.name,
                    local_operands,
                    [local_operands[-1].type],
                    dict(producer.attributes),
                )
                region_map = dict(zip(producer.operands, local_operands))
                for p_region in producer.regions:
                    from repro.ir.block import Block, Region

                    new_region = Region()
                    for blk in p_region.blocks:
                        new_blk = Block(
                            arg_types=[a.type for a in blk.arguments]
                        )
                        for oa, na in zip(blk.arguments, new_blk.arguments):
                            region_map[oa] = na
                        new_region.append_block(new_blk)
                    for blk, new_blk in zip(p_region.blocks, new_region.blocks):
                        for inner in blk.operations:
                            new_blk.append(inner.clone(region_map))
                    clone.append_region(new_region)
                mapping[op.result()] = clone.result()
            else:
                body.insert(op.clone(mapping))
        rewriter.replace_op(loop, list(new_loop.results))
        if not any(r.has_uses for r in producer.results):
            producer.erase()
            rewriter.notify_changed()


class FuseConsumerPattern(RewritePattern):
    """Pull a pointwise ``linalg.generic`` consuming a tiled loop's result
    into that loop, applied per tile core."""

    op_name = "linalg.generic"

    def match_and_rewrite(self, g: GenericOp, rewriter: PatternRewriter):
        loop = self._loop_feeding(g)
        if loop is None:
            return False
        stencil = _find_direct_stencil(loop)
        if stencil is None or not self._legal(g, stencil):
            return False
        self._fuse(g, loop, rewriter)
        return True

    @staticmethod
    def _loop_feeding(g: GenericOp) -> Optional[cfd.TiledLoopOp]:
        for v in g.ins:
            if isinstance(v, OpResult) and isinstance(v.op, cfd.TiledLoopOp):
                if v.op.parent is g.parent:
                    return v.op
        return None

    @staticmethod
    def _legal(g: GenericOp, stencil: cfd.StencilOp) -> bool:
        if any(any(c != 0 for c in o) for o in g.offsets):
            return False  # pointwise only
        if isinstance(g.out_init, OpResult) and isinstance(
            g.out_init.op, cfd.TiledLoopOp
        ):
            return False
        margins = g.margins
        if margins[0] != (0, 0):
            return False
        # The union of tile cores is exactly [halo, N - halo): the
        # consumer's domain must coincide with it, or cells outside the
        # domain would be overwritten (margins > halo) / cells inside
        # missed (margins < halo).
        s_halo = _stencil_halos(stencil)
        return all(
            (m_lo, m_hi) == (s_lo, s_hi)
            for (m_lo, m_hi), (s_lo, s_hi) in zip(margins[1:], s_halo)
        )

    def _fuse(
        self, g: GenericOp, loop: cfd.TiledLoopOp, rewriter: PatternRewriter
    ) -> None:
        # Extra loop inputs: consumer ins not produced by the loop itself.
        extra_ins: List[Value] = []
        for v in g.ins:
            if not (isinstance(v, OpResult) and v.op is loop):
                extra_ins.append(v)
        new_ins = loop.ins + extra_ins
        new_outs = loop.outs + [g.out_init]
        # The new loop is created at g's position so every extra input
        # dominates it; uses of the old loop's results are re-pointed to
        # the new results (the verifier rejects any use between the two).
        new_loop, mapping = _clone_loop(rewriter, loop, new_ins, new_outs)
        for old_arg, new_arg in zip(loop.in_args, new_loop.in_args):
            mapping[old_arg] = new_arg
        extra_in_args = new_loop.in_args[len(loop.ins) :]
        for old_arg, new_arg in zip(loop.out_args, new_loop.out_args):
            mapping[old_arg] = new_arg
        consumer_out_arg = new_loop.out_args[-1]

        body = OpBuilder.at_end(new_loop.body)
        old_yield = loop.body.terminator
        for op in loop.body.operations:
            if op is old_yield:
                break
            body.insert(op.clone(mapping))

        # Reconstruct the tile core in global coordinates from the cloned
        # stencil's explicit bounds and its Y-slice window offsets.
        stencil_new = _find_direct_stencil(new_loop)
        y_slice_op = stencil_new.y_init.op  # tensor.extract_slice
        window_offs = y_slice_op.offsets  # [0, w_1, ..., w_k]
        k = loop.rank
        nv = stencil_new.nb_var
        zero = arith.const_index(body, 0)
        nv_c = arith.const_index(body, nv)
        core_offs = [zero]
        core_sizes = [nv_c]
        for d in range(k):
            lo_local = stencil_new.bounds_lo[d]
            hi_local = stencil_new.bounds_hi[d]
            core_offs.append(arith.addi(body, window_offs[1 + d], lo_local))
            core_sizes.append(arith.subi(body, hi_local, lo_local))
        static = [nv] + [-1] * k

        def core_slice(value: Value) -> Value:
            return tensor.ExtractSliceOp.build(
                body, value, core_offs, core_sizes, static_sizes=static
            ).result()

        local_ins: List[Value] = []
        extra_iter = iter(extra_in_args)
        for v in g.ins:
            if isinstance(v, OpResult) and v.op is loop:
                yielded = old_yield.operand(v.index)
                local_ins.append(core_slice(mapping[yielded]))
            else:
                local_ins.append(core_slice(next(extra_iter)))
        out_slice = core_slice(consumer_out_arg)
        local_g = GenericOp.build(body, local_ins, out_slice)
        g_map = dict(zip(g.body.arguments, local_g.body.arguments))
        for op in g.body.operations:
            local_g.body.append(op.clone(g_map))
        new_out_val = tensor.InsertSliceOp.build(
            body, local_g.result(), consumer_out_arg, core_offs, core_sizes
        ).result()
        yields = [mapping[v] for v in old_yield.operands] + [new_out_val]
        cfd.CFDYieldOp.build(body, yields)

        rewriter.replace_op(g, [new_loop.results[-1]])
        for old_res, new_res in zip(loop.results, new_loop.results):
            old_res.replace_all_uses_with(new_res)
        loop.erase()
        rewriter.notify_changed()


class FuseProducersPass(Pass):
    """Greedy producer + consumer fusion over the whole module."""

    name = "fuse-structured-ops"

    def __init__(self, consumers: bool = True) -> None:
        self.consumers = consumers
        self.name = f"fuse-structured-ops<consumers={consumers}>"

    def run(self, module) -> None:
        patterns: List[RewritePattern] = [FuseProducerPattern()]
        if self.consumers:
            patterns.append(FuseConsumerPattern())
        apply_patterns_greedily(module, patterns)
