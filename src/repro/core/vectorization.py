"""Partial vectorization of in-place stencils (§2.4, §3.5, Figs. 2 and 7).

The innermost (contiguous) space dimension is strip-mined by the
vectorization factor ``VF``. Per strip:

* the ``B`` term, all ``U`` accesses, the center ``X`` access, and every
  ``L`` access touching a *different* row (some leading offset non-zero —
  that row is already fully updated) are read as VF-wide vectors with
  ``vector.transfer_read`` and combined into a vector ``temp`` by a
  vector-typed clone of the payload region (scalars broadcast on demand);
* the true recurrence — ``L`` accesses within the current row — is
  resolved by ``VF`` *unrolled scalar* updates, each combining its lane of
  ``temp`` (via ``vector.extract``) with ``tensor.extract`` reads of the
  just-written elements;
* trailing iterations that do not fill a strip are peeled into a scalar
  loop.

Legality: the vector clone of the region (producing ``d`` and the
vectorizable contributions) must not read recurrent arguments, and must
consist of elementwise-liftable operations; otherwise the op falls back
to the scalar lowering of :mod:`repro.core.lowering`.

Backward sweeps mirror everything: strips walk the row from high to low
addresses and lanes unroll in descending order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.lowering import (
    backward_slice,
    build_sweep_nest,
    inline_region_scalars,
    lower_stencil_scalar,
    slice_depends_on,
    stencil_write_bounds,
)
from repro.dialects import arith, cfd, scf, tensor, vector
from repro.ir import Pass
from repro.ir.builder import OpBuilder
from repro.ir.rewriter import PatternRewriter, RewritePattern, apply_patterns_greedily
from repro.ir.types import VectorType, f64
from repro.ir.values import Value

#: Region operations that lift elementwise to vectors.
_VECTORIZABLE_OPS = {
    "arith.constant",
    "arith.addf",
    "arith.subf",
    "arith.mulf",
    "arith.divf",
    "arith.negf",
    "arith.maximumf",
    "arith.minimumf",
    "math.sqrt",
    "math.absf",
    "math.exp",
    "math.log",
    "math.powf",
    "math.fma",
}


def classify_accesses(pattern) -> Tuple[List[int], List[int]]:
    """Indices of (vectorizable, recurrent) accesses in pattern order.

    An access is *recurrent* when it reads the current iteration (``L``)
    within the row being written on the dependence side: all leading
    offsets zero. Everything else — ``U`` reads, ``L`` reads from
    already-completed rows like ``y[i-1, j:j+VF]`` in Fig. 2, and
    initial-content reads (anti-dependence side; strips read before they
    write, and strips they haven't reached are untouched) — is
    vectorizable.
    """
    dependent = set(pattern.dependent_l_offsets)
    vectorizable, recurrent = [], []
    for a, (offset, tag) in enumerate(pattern.accesses):
        if (
            tag == -1
            and offset in dependent
            and all(c == 0 for c in offset[:-1])
        ):
            recurrent.append(a)
        else:
            vectorizable.append(a)
    return vectorizable, recurrent


def can_vectorize(op: cfd.StencilOp) -> bool:
    """Check the region-level legality conditions (see module docstring)."""
    pattern = op.pattern
    nv = op.nb_var
    vectorizable, recurrent = classify_accesses(pattern)
    term = op.body.terminator
    yields = list(term.operands)
    d_val = yields[0]
    contribs = yields[1:]
    recurrent_args: Set[Value] = set()
    for a in recurrent:
        for v in range(nv):
            recurrent_args.add(op.body.arguments[a * nv + v])
    vector_targets = [d_val]
    for a in vectorizable + [pattern.num_accesses]:  # incl. center contribs
        for v in range(nv):
            vector_targets.append(contribs[a * nv + v])
    if slice_depends_on(op.body, vector_targets, recurrent_args):
        return False
    needed = backward_slice(op.body, vector_targets)
    for region_op in op.body.operations:
        if id(region_op) in needed and region_op.name not in _VECTORIZABLE_OPS:
            return False
    # The scalar recurrence part must also be cloneable — any op is fine
    # there (it stays scalar), so no further checks.
    return True


def _emit_vector_clone(
    builder: OpBuilder,
    block,
    targets: Sequence[Value],
    bindings: Dict[Value, Value],
    vf: int,
) -> List[Value]:
    """Clone the ops computing ``targets`` with vector-typed block-arg
    bindings; scalar intermediate values are broadcast at their first
    vector use. Returns the mapped targets (vectors or scalars)."""
    vec_t = VectorType([vf], f64)
    needed = backward_slice(block, targets)
    mapping: Dict[Value, Value] = dict(bindings)
    broadcast_cache: Dict[int, Value] = {}

    def as_vector(v: Value) -> Value:
        if isinstance(v.type, VectorType):
            return v
        key = id(v)
        if key not in broadcast_cache:
            broadcast_cache[key] = vector.BroadcastOp.build(
                builder, v, vec_t
            ).result()
        return broadcast_cache[key]

    term = block.terminator
    for op in block.operations:
        if op is term or id(op) not in needed:
            continue
        operands = [mapping.get(o, o) for o in op.operands]
        if any(isinstance(o.type, VectorType) for o in operands):
            operands = [as_vector(o) for o in operands]
            result_types = [vec_t for _ in op.results]
        else:
            result_types = [r.type for r in op.results]
        clone = builder.create(
            op.name, operands, result_types, dict(op.attributes)
        )
        for old_res, new_res in zip(op.results, clone.results):
            mapping[old_res] = new_res

    out = []
    for t in targets:
        out.append(mapping.get(t, t))
    return out


def lower_stencil_vectorized(
    op: cfd.StencilOp, vf: int, rewriter: PatternRewriter
) -> bool:
    """The partially vectorized lowering; returns False on fallback."""
    pattern = op.pattern
    if not can_vectorize(op):
        return False
    nv = op.nb_var
    k = pattern.rank
    n_access = pattern.num_accesses
    vectorizable, recurrent = classify_accesses(pattern)
    sweep = pattern.sweep
    vec_t = VectorType([vf], f64)

    los, his = stencil_write_bounds(rewriter, op)
    x, b = op.x, op.b

    # Outer dims: a sweep-directed scalar nest threading Y.
    if k > 1:
        outer, body, idx_outer, iter_args = build_sweep_nest(
            rewriter, los[:-1], his[:-1], sweep, [op.y_init]
        )
        y0 = iter_args[0]
    else:
        outer, body, idx_outer, y0 = None, rewriter, [], op.y_init

    lo_j, hi_j = los[-1], his[-1]
    span = arith.subi(body, hi_j, lo_j)
    vf_c = arith.const_index(body, vf)
    n_strips = arith.floordivi(body, span, vf_c)
    zero = arith.const_index(body, 0)
    one = arith.const_index(body, 1)

    # --- the vectorized strip loop (over strip indices) -----------------
    strip_loop = scf.ForOp.build(body, zero, n_strips, one, [y0])
    sb = OpBuilder.at_end(strip_loop.body)
    t_iv = strip_loop.induction_var
    y_strip = strip_loop.iter_args[0]
    strip_off = arith.muli(sb, t_iv, arith.const_index(sb, vf))
    if sweep == 1:
        j0 = arith.addi(sb, lo_j, strip_off)  # strip start (ascending)
    else:
        hi_minus = arith.subi(sb, hi_j, arith.const_index(sb, vf))
        j0 = arith.subi(sb, hi_minus, strip_off)  # descending strips

    v_consts = [arith.const_index(sb, v) for v in range(nv)]

    def vec_coords(v_c: Value, offset: Sequence[int]) -> List[Value]:
        out = [v_c]
        for d in range(k - 1):
            if offset[d]:
                out.append(
                    arith.addi(sb, idx_outer[d], arith.const_index(sb, offset[d]))
                )
            else:
                out.append(idx_outer[d])
        if offset[k - 1]:
            out.append(arith.addi(sb, j0, arith.const_index(sb, offset[k - 1])))
        else:
            out.append(j0)
        return out

    # Vector reads for every vectorizable access, the center and B.
    zero_off = [0] * k
    vec_args: Dict[int, List[Value]] = {}
    for a in vectorizable:
        offset, tag = pattern.accesses[a]
        src = y_strip if tag == -1 else x
        vec_args[a] = [
            vector.TransferReadOp.build(
                sb, src, vec_coords(v_consts[v], offset), vec_t
            ).result()
            for v in range(nv)
        ]
    center_vecs = [
        vector.TransferReadOp.build(
            sb, x, vec_coords(v_consts[v], zero_off), vec_t
        ).result()
        for v in range(nv)
    ]
    b_vecs = [
        vector.TransferReadOp.build(
            sb, b, vec_coords(v_consts[v], zero_off), vec_t
        ).result()
        for v in range(nv)
    ]

    # Vector clone of the region for d + vectorizable contributions.
    bindings: Dict[Value, Value] = {}
    for a in vectorizable:
        for v in range(nv):
            bindings[op.body.arguments[a * nv + v]] = vec_args[a][v]
    for v in range(nv):
        bindings[op.body.arguments[n_access * nv + v]] = center_vecs[v]
    term = op.body.terminator
    yields = list(term.operands)
    targets = [yields[0]]  # d
    for a in vectorizable + [n_access]:
        for v in range(nv):
            targets.append(yields[1 + a * nv + v])
    mapped = _emit_vector_clone(sb, op.body, targets, bindings, vf)
    d_vec = mapped[0]
    if not isinstance(d_vec.type, VectorType):
        d_vec = vector.BroadcastOp.build(sb, d_vec, vec_t).result()
    temp = []
    for v in range(nv):
        acc = b_vecs[v]
        for i_a in range(len(vectorizable) + 1):
            c = mapped[1 + i_a * nv + v]
            if not isinstance(c.type, VectorType):
                c = vector.BroadcastOp.build(sb, c, vec_t).result()
            acc = arith.addf(sb, acc, c)
        temp.append(acc)

    if not recurrent:
        # No in-row recurrence (out-of-place stencils like Jacobi, or
        # in-place patterns whose L offsets all leave the row): the whole
        # strip is computed and stored as one vector (§4.1's observation
        # that out-of-place stencils vectorize fully).
        y_cur = y_strip
        for v in range(nv):
            result_vec = arith.divf(sb, temp[v], d_vec)
            y_cur = vector.TransferWriteOp.build(
                sb, result_vec, y_cur, vec_coords(v_consts[v], zero_off)
            ).result()
        scf.YieldOp.build(sb, [y_cur])
        _emit_peel_and_finish(
            op, vf, rewriter, body, strip_loop, outer, idx_outer,
            lo_j, hi_j, n_strips, vf_c, k, nv, pattern, x, b, sweep,
        )
        return True

    # Unrolled scalar resolution of the recurrence, lane by lane.
    recurrent_targets = []
    for a in recurrent:
        for v in range(nv):
            recurrent_targets.append(yields[1 + a * nv + v])
    lanes = range(vf) if sweep == 1 else range(vf - 1, -1, -1)
    y_cur = y_strip
    for u in lanes:
        u_c = arith.const_index(sb, u)
        j_u = arith.addi(sb, j0, u_c)
        lane_bindings: Dict[Value, Value] = {}
        for a in vectorizable:
            for v in range(nv):
                lane_bindings[op.body.arguments[a * nv + v]] = (
                    vector.VectorExtractOp.build(sb, vec_args[a][v], u).result()
                )
        for v in range(nv):
            lane_bindings[op.body.arguments[n_access * nv + v]] = (
                vector.VectorExtractOp.build(sb, center_vecs[v], u).result()
            )
        for a in recurrent:
            offset, _tag = pattern.accesses[a]
            jr = arith.addi(sb, j_u, arith.const_index(sb, offset[k - 1]))
            for v in range(nv):
                lane_bindings[op.body.arguments[a * nv + v]] = (
                    tensor.ExtractOp.build(
                        sb, y_cur, [v_consts[v]] + idx_outer + [jr]
                    ).result()
                )
        rec_vals = _emit_scalar_clone(
            sb, op.body, recurrent_targets, lane_bindings
        )
        d_u = vector.VectorExtractOp.build(sb, d_vec, u).result()
        r_i = 0
        for v in range(nv):
            total = vector.VectorExtractOp.build(sb, temp[v], u).result()
            for i_a in range(len(recurrent)):
                total = arith.addf(sb, total, rec_vals[i_a * nv + v])
            val = arith.divf(sb, total, d_u)
            y_cur = tensor.InsertOp.build(
                sb, val, y_cur, [v_consts[v]] + idx_outer + [j_u]
            ).result()
    scf.YieldOp.build(sb, [y_cur])
    _emit_peel_and_finish(
        op, vf, rewriter, body, strip_loop, outer, idx_outer,
        lo_j, hi_j, n_strips, vf_c, k, nv, pattern, x, b, sweep,
    )
    return True


def _emit_peel_and_finish(
    op, vf, rewriter, body, strip_loop, outer, idx_outer,
    lo_j, hi_j, n_strips, vf_c, k, nv, pattern, x, b, sweep,
) -> None:
    """The peeled scalar loop over trailing iterations, plus the final
    replacement of the stencil op (shared by both vectorized paths)."""
    n_access = pattern.num_accesses
    zero_off = [0] * k
    n_full = arith.muli(body, n_strips, vf_c)
    if sweep == 1:
        peel_lo = arith.addi(body, lo_j, n_full)
        peel_hi = hi_j
    else:
        peel_lo = lo_j
        peel_hi = arith.subi(body, hi_j, n_full)
    peel_outer, pb, peel_idx, peel_args = build_sweep_nest(
        body, [peel_lo], [peel_hi], sweep, [strip_loop.result()]
    )
    y_peel = peel_args[0]
    j_p = peel_idx[0]
    pv_consts = [arith.const_index(pb, v) for v in range(nv)]

    def peel_coords(v_c: Value, offset: Sequence[int]) -> List[Value]:
        out = [v_c]
        for d in range(k - 1):
            if offset[d]:
                out.append(
                    arith.addi(pb, idx_outer[d], arith.const_index(pb, offset[d]))
                )
            else:
                out.append(idx_outer[d])
        if offset[k - 1]:
            out.append(arith.addi(pb, j_p, arith.const_index(pb, offset[k - 1])))
        else:
            out.append(j_p)
        return out

    args: List[Value] = []
    for offset, tag in pattern.accesses:
        src = y_peel if tag == -1 else x
        for v in range(nv):
            args.append(
                tensor.ExtractOp.build(
                    pb, src, peel_coords(pv_consts[v], offset)
                ).result()
            )
    for v in range(nv):
        args.append(
            tensor.ExtractOp.build(
                pb, x, peel_coords(pv_consts[v], zero_off)
            ).result()
        )
    peel_yields = inline_region_scalars(pb, op.body, args)
    d_val = peel_yields[0]
    contribs = peel_yields[1:]
    y_out = y_peel
    for v in range(nv):
        total = tensor.ExtractOp.build(
            pb, b, peel_coords(pv_consts[v], zero_off)
        ).result()
        for a in range(n_access + 1):
            total = arith.addf(pb, total, contribs[a * nv + v])
        val = arith.divf(pb, total, d_val)
        y_out = tensor.InsertOp.build(
            pb, val, y_out, peel_coords(pv_consts[v], zero_off)
        ).result()
    scf.YieldOp.build(pb, [y_out])

    root = outer if k > 1 else peel_outer
    if "tv_id" in op.attributes:
        root.attributes["tv_id"] = op.attributes["tv_id"]
    if k > 1:
        scf.YieldOp.build(body, [peel_outer.result()])
        rewriter.replace_op(op, [outer.result()])
    else:
        rewriter.replace_op(op, [peel_outer.result()])


def _emit_scalar_clone(
    builder: OpBuilder,
    block,
    targets: Sequence[Value],
    bindings: Dict[Value, Value],
) -> List[Value]:
    """Clone the ops computing ``targets`` with scalar bindings."""
    needed = backward_slice(block, targets)
    mapping: Dict[Value, Value] = dict(bindings)
    term = block.terminator
    for op in block.operations:
        if op is term or id(op) not in needed:
            continue
        builder.insert(op.clone(mapping))
    return [mapping.get(t, t) for t in targets]


def lower_stencil_out_of_place(
    op: cfd.StencilOp, rewriter: PatternRewriter
) -> bool:
    """Lower a fully out-of-place stencil (empty ``L``) to a whole-array
    ``linalg.generic``.

    With no intra-iteration dependence, the stencil is an ordinary
    shifted-access pointwise computation — a real compiler vectorizes it
    completely (the §4.1 Jacobi observation); in this backend the
    structured form becomes whole-array NumPy. Applies to single-field
    unbounded stencils whose payload is elementwise-liftable.
    """
    from repro.dialects.linalg import GenericOp, LinalgYieldOp

    pattern = op.pattern
    if pattern.is_in_place or op.has_bounds or op.nb_var != 1:
        return False
    if not can_vectorize(op):
        return False
    x, b, y = op.x, op.b, op.y_init
    rank = pattern.rank
    ins = [b] + [x] * (pattern.num_accesses + 1)
    offsets = [[0] * (rank + 1)]
    for offset, _tag in pattern.accesses:
        offsets.append([0] + list(offset))
    offsets.append([0] * (rank + 1))  # the center access
    g = GenericOp.build(rewriter, ins, y, offsets=offsets)
    gb = OpBuilder.at_end(g.body)
    g_args = g.body.arguments
    bindings: Dict[Value, Value] = {}
    for a in range(pattern.num_accesses + 1):
        bindings[op.body.arguments[a]] = g_args[1 + a]
    term = op.body.terminator
    targets = list(term.operands)
    mapped = _emit_scalar_clone(gb, op.body, targets, bindings)
    d_val = mapped[0]
    total = g_args[0]  # the B value
    for c in mapped[1:]:
        total = arith.addf(gb, total, c)
    LinalgYieldOp.build(gb, [arith.divf(gb, total, d_val)])
    if "tv_id" in op.attributes:
        g.attributes["tv_id"] = op.attributes["tv_id"]
    rewriter.replace_op(op, [g.result()])
    return True


class _VectorizeStencil(RewritePattern):
    op_name = "cfd.stencilOp"

    def __init__(self, vf: int):
        self.vf = vf
        self.fallbacks = 0

    def match_and_rewrite(self, op, rewriter):
        if lower_stencil_out_of_place(op, rewriter):
            return True
        if not lower_stencil_vectorized(op, self.vf, rewriter):
            lower_stencil_scalar(op, rewriter)
            self.fallbacks += 1
        return True


class VectorizeStencilsPass(Pass):
    """Lower every ``cfd.stencilOp`` with partial vectorization (falling
    back to scalar lowering when the region is not liftable)."""

    def __init__(self, vf: int = 8) -> None:
        if vf < 1:
            raise ValueError("vectorization factor must be >= 1")
        self.vf = vf
        self.name = f"vectorize-stencils<vf={vf}>"
        self.fallbacks = 0

    def run(self, module) -> None:
        pattern = _VectorizeStencil(self.vf)
        apply_patterns_greedily(module, [pattern])
        self.fallbacks = pattern.fallbacks
