"""The evaluation experiments (§4), scaled to this environment.

Every table/figure of the paper has an entry here; the ``benchmarks/``
modules call these builders, print the regenerated rows/series, and
persist them under ``benchmarks/results/``.

Scaling strategy (see DESIGN.md): kernels execute for real at reduced
domain sizes on one core; multi-thread points are produced by the
:mod:`repro.machine` simulator running the compiler's *actual* wavefront
schedule at the paper's original domain/tile sizes, with tile costs
extrapolated from the measured per-cell times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import naive
from repro.baselines.pluto import PlutoOptions, PlutoStencil, pluto_jacobi
from repro.bench.harness import time_callable
from repro.core import frontend, scheduling
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import (
    StencilPattern,
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    jacobi_5pt_2d,
)
from repro.machine import XEON_6152, WorkloadProfile, simulate_wavefront_execution

#: The vectorization factor used throughout the benchmarks. The paper
#: uses VF = 8 (one AVX-512 register of f64); this reproduction's vector
#: unit is a NumPy slice, whose sweet spot on small arrays sits higher.
BENCH_VF = 32

#: Hardware anchor for the thread-scaling simulation: the per-cell time
#: of a *scalar compiled* Gauss-Seidel cell update on the paper's Xeon
#: (order 10 ns). Our Python-backend per-cell times are ~100x slower,
#: which would make every kernel look compute-bound and hide the
#: bandwidth saturation of Figs. 12/13/15; anchoring the simulated tile
#: cost to hardware scale — while keeping OUR measured ratios between
#: implementations — restores realistic arithmetic intensity. Documented
#: in DESIGN.md/EXPERIMENTS.md.
HW_SCALAR_CELL_SECONDS = 10e-9


@dataclass
class KernelCase:
    """One §4.1 stencil use case, with the paper's and our parameters."""

    name: str
    pattern_factory: Callable[[], StencilPattern]
    paper_domain: Tuple[int, ...]
    paper_iterations: int
    domain: Tuple[int, ...]
    iterations: int
    #: Cache-tile sizes (the Table 2 "1-10 threads" column), ours.
    mlir_tiles: Tuple[int, ...]
    #: Paper's autotuned tile sizes (Table 2), for reference rows.
    paper_mlir_tiles: Tuple[int, ...]
    #: Pluto tile sizes (Table 3 analog), ours.
    pluto_tiles: Tuple[int, ...]
    paper_pluto_tiles: Tuple[int, ...]
    #: Sub-domain sizes used for the *simulated* parallel schedule, at
    #: the paper's domain scale.
    paper_subdomains: Tuple[int, ...]
    #: Vectorization factor for this case (chosen so the interior is a
    #: multiple of VF: the NumPy vector unit pays per-call overhead, so
    #: peeled remainders are kept at zero where the paper's AVX-512
    #: remainder handling is nearly free).
    vf: int = BENCH_VF

    @property
    def d(self) -> float:
        return float(self.pattern_factory().num_accesses)


#: Table 1 (configurations) + Tables 2/3 (tile sizes), paper vs ours.
KERNEL_CASES: Dict[str, KernelCase] = {
    "seidel-2D-5pt": KernelCase(
        name="seidel-2D-5pt",
        pattern_factory=gauss_seidel_5pt_2d,
        paper_domain=(2000, 2000),
        paper_iterations=500,
        domain=(130, 130),
        iterations=3,
        mlir_tiles=(32, 64),
        paper_mlir_tiles=(64, 256),
        pluto_tiles=(16, 16),
        paper_pluto_tiles=(16, 16),
        paper_subdomains=(32, 64),
    ),
    "seidel-2D-9pt": KernelCase(
        name="seidel-2D-9pt",
        pattern_factory=gauss_seidel_9pt_2d,
        paper_domain=(4000, 4000),
        paper_iterations=200,
        domain=(130, 130),
        iterations=2,
        mlir_tiles=(1, 64),
        paper_mlir_tiles=(1, 128),
        pluto_tiles=(16, 32),
        paper_pluto_tiles=(16, 32),
        paper_subdomains=(1, 128),
    ),
    "seidel-2D-9pt-2nd": KernelCase(
        name="seidel-2D-9pt-2nd",
        pattern_factory=gauss_seidel_9pt_2nd_order_2d,
        paper_domain=(2000, 2000),
        paper_iterations=500,
        domain=(132, 132),
        iterations=3,
        mlir_tiles=(32, 64),
        paper_mlir_tiles=(64, 256),
        pluto_tiles=(16, 16),
        paper_pluto_tiles=(16, 16),
        paper_subdomains=(20, 64),
    ),
    "heat-3D": KernelCase(
        name="heat-3D",
        pattern_factory=gauss_seidel_6pt_3d,
        paper_domain=(256, 256, 256),
        paper_iterations=50,
        domain=(26, 26, 26),
        iterations=2,
        mlir_tiles=(4, 8, 24),
        paper_mlir_tiles=(4, 26, 256),
        pluto_tiles=(4, 8, 16),
        paper_pluto_tiles=(4, 16, 256),
        paper_subdomains=(6, 12, 256),
        vf=24,
    ),
}


def _cells(domain: Sequence[int]) -> int:
    n = 1
    for d in domain:
        n *= d
    return n


# ---------------------------------------------------------------------------
# Kernel builders.
# ---------------------------------------------------------------------------


def build_mlir_kernel(
    case: KernelCase, options: Optional[CompileOptions] = None
):
    """The compiled generated kernel for one case (tiled + vectorized)."""
    pattern = case.pattern_factory()
    module = frontend.build_stencil_kernel(
        pattern,
        case.domain,
        frontend.identity_body(case.d),
        iterations=case.iterations,
    )
    options = options or CompileOptions(
        tile_sizes=case.mlir_tiles, vectorize=case.vf
    )
    return StencilCompiler(options).compile(module)


def case_inputs(case: KernelCase, seed: int = 0):
    rng = np.random.default_rng(seed)
    shape = (1,) + tuple(case.domain)
    return rng.standard_normal(shape), rng.standard_normal(shape)


def measure_case(
    case: KernelCase, repeats: int = 3
) -> Dict[str, float]:
    """Wall-clock seconds per implementation, single thread, real runs:
    the backbone of Fig. 11's 1-thread panel."""
    pattern = case.pattern_factory()
    x, b = case_inputs(case)
    u2, b2 = x[0].copy(), b[0]

    naive_t = time_callable(
        lambda: naive.iterate(
            naive.gauss_seidel_sweep_python, u2.copy(), b2, pattern,
            case.d, case.iterations,
        ),
        repeats=repeats,
    )
    pluto1 = PlutoStencil(
        pattern, case.d, PlutoOptions(variant=1, tile_sizes=case.pluto_tiles)
    )
    pluto1_t = time_callable(
        lambda: pluto1.run(u2, b2, case.iterations), repeats=repeats
    )
    pluto2 = PlutoStencil(
        pattern, case.d, PlutoOptions(variant=2, tile_sizes=case.pluto_tiles)
    )
    pluto2_t = time_callable(
        lambda: pluto2.run(u2, b2, case.iterations), repeats=repeats
    )
    kernel = build_mlir_kernel(case)
    mlir_t = time_callable(
        lambda: kernel(x, b, x.copy()), repeats=repeats
    )
    return {
        "naive": naive_t,
        "C+Pluto 1": pluto1_t,
        "C+Pluto 2": pluto2_t,
        "MLIR": mlir_t,
        "_pluto1_waves": pluto1.last_wavefront_sizes,
        "_pluto2_waves": pluto2.last_wavefront_sizes,
    }


_MEASURED_CACHE: Dict[str, Dict[str, float]] = {}


def measured(case_name: str, repeats: int = 2) -> Dict[str, float]:
    """Cached :func:`measure_case` (several benchmarks share the runs)."""
    if case_name not in _MEASURED_CACHE:
        _MEASURED_CACHE[case_name] = measure_case(
            KERNEL_CASES[case_name], repeats=repeats
        )
    return _MEASURED_CACHE[case_name]


# ---------------------------------------------------------------------------
# Simulated parallel profiles (paper-scale schedules, measured tile cost).
# ---------------------------------------------------------------------------


def hw_per_cell(
    implementation_seconds: float, naive_seconds: float
) -> float:
    """Map a measured per-run time onto the hardware anchor: the scalar
    baseline is pinned at :data:`HW_SCALAR_CELL_SECONDS` per cell and
    every implementation keeps its *measured* ratio to it."""
    return HW_SCALAR_CELL_SECONDS * implementation_seconds / naive_seconds


def mlir_parallel_profile(
    case: KernelCase, measured_seconds: float, naive_seconds: float
) -> WorkloadProfile:
    """The compiler's wavefront schedule at the *paper's* domain size,
    with hardware-anchored tile cost (measured implementation ratios)."""
    pattern = case.pattern_factory()
    from repro.core.tiling import legalize_tile_sizes

    sub = legalize_tile_sizes(pattern, case.paper_subdomains)
    grid = [
        max(1, -(-n // t)) for n, t in zip(case.paper_domain, sub)
    ]
    deps = pattern.block_stencil_offsets(sub)
    offsets, _ = scheduling.compute_parallel_blocks(grid, deps)
    sizes = scheduling.group_sizes(offsets)
    per_cell = hw_per_cell(measured_seconds, naive_seconds)
    tile_cells = _cells(sub)
    return WorkloadProfile(
        wavefront_sizes=[int(s) for s in sizes],
        tile_seconds=per_cell * tile_cells,
        tile_bytes=tile_cells * 3 * 8.0,
        iterations=case.paper_iterations,
    )


def pluto_parallel_profile(
    case: KernelCase,
    measured_seconds: float,
    naive_seconds: float,
    wavefront_sizes: List[int],
    variant: int,
) -> WorkloadProfile:
    """The Pluto baseline's wavefront profile scaled to paper size.

    The measured run already produced the tile wavefront structure at our
    scale; paper-scale profiles scale the group count with the domain
    ratio per dimension (parallelogram tiling preserves the diamond
    shape)."""
    scale = max(
        1,
        round(
            (_cells(case.paper_domain) / _cells(case.domain))
            ** (1.0 / len(case.domain))
        ),
    )
    sizes = []
    for s in wavefront_sizes:
        sizes.extend([s * scale ** (len(case.domain) - 1)] * scale)
    total_tiles = sum(sizes)
    iterations = (
        1 if variant == 1 else case.paper_iterations
    )
    per_cell = hw_per_cell(measured_seconds, naive_seconds)
    paper_cells = _cells(case.paper_domain) * (
        case.paper_iterations if variant == 1 else 1
    )
    tile_seconds = per_cell * paper_cells / max(1, total_tiles)
    # Parallelogram tiles traverse the domain diagonally: accesses are
    # strided across cache lines ("scatter and gather instructions
    # under-utilizing memory bandwidth", §2.4), and partial tiles at the
    # skewed boundaries re-stream their halos. Modeled as a 3x traffic
    # inflation relative to the rectangular-tile kernels.
    skew_traffic = 3.0
    return WorkloadProfile(
        wavefront_sizes=sizes,
        tile_seconds=tile_seconds,
        tile_bytes=(paper_cells / max(1, total_tiles)) * 3 * 8.0 * skew_traffic,
        iterations=iterations,
    )


def simulated_speedups(
    case: KernelCase,
    measured: Dict[str, float],
    threads: Sequence[int],
) -> Dict[str, Dict[int, float]]:
    """Fig. 11/12 panels: speedup over sequential naive per thread count.

    1-thread points are the real measurements; >1 threads scale them by
    the simulated parallel efficiency of each implementation's schedule.
    """
    out: Dict[str, Dict[int, float]] = {}
    base = measured["naive"]
    profiles = {
        "C+Pluto 1": pluto_parallel_profile(
            case, measured["C+Pluto 1"], base, measured["_pluto1_waves"], 1
        ),
        "C+Pluto 2": pluto_parallel_profile(
            case, measured["C+Pluto 2"], base, measured["_pluto2_waves"], 2
        ),
        "MLIR": mlir_parallel_profile(case, measured["MLIR"], base),
    }
    for name, profile in profiles.items():
        one = simulate_wavefront_execution(profile, 1, XEON_6152)
        curve = {}
        for p in threads:
            sim = simulate_wavefront_execution(profile, p, XEON_6152)
            efficiency = one / sim
            curve[p] = (base / measured[name]) * efficiency
        out[name] = curve
    return out


# ---------------------------------------------------------------------------
# Jacobi (out-of-place) comparison, §4.1 last paragraph.
# ---------------------------------------------------------------------------


def measure_jacobi(n: int = 258, iterations: int = 10, repeats: int = 3):
    pattern = jacobi_5pt_2d()
    rng = np.random.default_rng(1)
    u = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    pluto_t = time_callable(
        lambda: pluto_jacobi(u, b, pattern, 4.0, iterations), repeats=repeats
    )
    module = frontend.build_stencil_kernel(
        pattern, (n, n), frontend.identity_body(4.0), iterations=iterations
    )
    kernel = StencilCompiler(
        CompileOptions(vectorize=128)
    ).compile(module)
    x = u[None].copy()
    bb = b[None].copy()
    mlir_t = time_callable(lambda: kernel(x, bb, x.copy()), repeats=repeats)
    return {"C+Pluto": pluto_t, "MLIR": mlir_t}
