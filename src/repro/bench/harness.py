"""Timing and reporting utilities shared by all benchmarks."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Sequence

#: Where benchmark modules persist their regenerated data.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass
class Measurement:
    """A timed quantity: median plus the raw samples."""

    seconds: float
    samples: List[float] = field(default_factory=list)

    @classmethod
    def collect(
        cls, fn: Callable[[], Any], repeats: int = 3, warmup: int = 1
    ) -> "Measurement":
        for _ in range(warmup):
            fn()
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        samples.sort()
        return cls(samples[len(samples) // 2], samples)


def time_callable(
    fn: Callable[[], Any], repeats: int = 3, warmup: int = 1
) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    return Measurement.collect(fn, repeats, warmup).seconds


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Render an ASCII table (the regenerated paper tables)."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: Dict[str, Dict[Any, float]],
    title: str = "",
    fmt: str = "{:.3g}",
) -> str:
    """Render several named series over a shared x axis (the figures)."""
    xs = sorted({x for s in series.values() for x in s})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [x]
        for name in series:
            value = series[name].get(x)
            row.append(fmt.format(value) if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def save_results(name: str, data: Any) -> Path:
    """Persist regenerated experiment data as JSON under
    ``benchmarks/results/``; returns the path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(data, indent=2, default=_jsonable))
    return path


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def _jsonable(obj: Any):
    try:
        import numpy as np

        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
    except ImportError:  # pragma: no cover
        pass
    return str(obj)
