"""Benchmark harness: experiment definitions and reporting utilities.

* :mod:`repro.bench.harness` — timing, table/series rendering, result
  persistence;
* :mod:`repro.bench.experiments` — the scaled-down configurations of
  every table and figure in the paper's evaluation, and the builders
  producing compiled kernels / baselines for them.

The ``benchmarks/`` directory contains one pytest-benchmark module per
table/figure, each printing the regenerated rows/series.
"""

from repro.bench.harness import (
    Measurement,
    format_series,
    format_table,
    save_results,
    time_callable,
)

__all__ = [
    "Measurement",
    "format_series",
    "format_table",
    "save_results",
    "time_callable",
]
