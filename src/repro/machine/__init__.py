"""Machine model and thread-scaling simulator.

The paper's evaluation machine — a dual-socket Xeon 6152 with 44 cores
over 4 NUMA nodes — is not available in this environment (one core), so
the multi-threaded points of Figs. 11/12/13/15 are produced by an
analytic simulator: the compiler's *actual* CSR wavefront schedule is
list-scheduled over ``p`` workers with per-group barrier costs and a
NUMA-aware memory-bandwidth ceiling, calibrated with measured
single-thread tile times. See DESIGN.md ("Substitutions").

Model selection: :func:`resolve_machine_model` resolves an explicit
preset name, then the ``REPRO_MACHINE`` environment variable, then the
host-calibrated model — the shared pin for the static performance
prover, the perf lint and the autotuner's static costing.
"""

from repro.machine.model import (
    LOCAL_SINGLE_CORE,
    MACHINE_ENV,
    MACHINE_PRESETS,
    PY_NUMPY_BACKEND,
    XEON_6152,
    MachineModel,
    host_machine_model,
    resolve_machine_model,
)
from repro.machine.simulator import (
    WorkloadProfile,
    profile_from_schedule,
    simulate_wavefront_execution,
    speedup_curve,
)

__all__ = [
    "MachineModel",
    "MACHINE_ENV",
    "MACHINE_PRESETS",
    "XEON_6152",
    "LOCAL_SINGLE_CORE",
    "PY_NUMPY_BACKEND",
    "host_machine_model",
    "resolve_machine_model",
    "WorkloadProfile",
    "profile_from_schedule",
    "simulate_wavefront_execution",
    "speedup_curve",
]
