"""Machine model and thread-scaling simulator.

The paper's evaluation machine — a dual-socket Xeon 6152 with 44 cores
over 4 NUMA nodes — is not available in this environment (one core), so
the multi-threaded points of Figs. 11/12/13/15 are produced by an
analytic simulator: the compiler's *actual* CSR wavefront schedule is
list-scheduled over ``p`` workers with per-group barrier costs and a
NUMA-aware memory-bandwidth ceiling, calibrated with measured
single-thread tile times. See DESIGN.md ("Substitutions").
"""

from repro.machine.model import MachineModel, XEON_6152, LOCAL_SINGLE_CORE
from repro.machine.simulator import (
    WorkloadProfile,
    simulate_wavefront_execution,
    speedup_curve,
)

__all__ = [
    "MachineModel",
    "XEON_6152",
    "LOCAL_SINGLE_CORE",
    "WorkloadProfile",
    "simulate_wavefront_execution",
    "speedup_curve",
]
