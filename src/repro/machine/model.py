"""Machine descriptions.

The :data:`XEON_6152` preset matches §4's evaluation platform: a
dual-socket Intel Xeon Gold 6152 @ 2.10 GHz, 22 cores per socket in
sub-NUMA clustering (2 NUMA nodes of 11 cores each per socket), two
AVX-512 units per core, 32 KB L1D and 1 MB L2 per core, 32 MB L3 and one
memory controller per NUMA node.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """The parameters the thread-scaling simulator needs."""

    name: str
    cores: int
    numa_nodes: int
    l1_bytes: int
    l2_bytes: int
    l3_bytes_per_numa: int
    #: Sustainable DRAM bandwidth per NUMA node, bytes/second.
    mem_bw_per_numa: float
    #: Cost of one synchronization barrier across ``p`` threads, seconds
    #: (scaled by log2(p) in the simulator).
    barrier_seconds: float
    #: Throughput penalty factor for remote-NUMA traffic (>= 1).
    remote_penalty: float = 1.6

    @property
    def cores_per_numa(self) -> int:
        return self.cores // self.numa_nodes

    def numa_nodes_used(self, threads: int) -> int:
        """Threads fill NUMA nodes in order (compact pinning)."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        return min(
            self.numa_nodes, -(-threads // self.cores_per_numa)
        )

    def bandwidth_available(self, threads: int) -> float:
        """Aggregate DRAM bandwidth reachable by ``threads`` workers."""
        return self.numa_nodes_used(threads) * self.mem_bw_per_numa


#: The paper's platform (§4): 2 x Xeon Gold 6152, 44 cores, 4 NUMA nodes.
XEON_6152 = MachineModel(
    name="2x Intel Xeon Gold 6152 @ 2.10GHz",
    cores=44,
    numa_nodes=4,
    l1_bytes=32 * 1024,
    l2_bytes=1024 * 1024,
    l3_bytes_per_numa=32 * 1024 * 1024,
    mem_bw_per_numa=30e9,  # ~120 GB/s aggregate over 4 nodes
    barrier_seconds=4e-6,
)

def host_machine_model() -> MachineModel:
    """A model calibrated to the machine actually running this process.

    Core count comes from the scheduling affinity mask (the honest
    number inside containers); the memory system is assumed to be one
    NUMA node of commodity bandwidth. This is what the parallel-
    wavefront benchmark cross-checks its *measured* speedups against —
    on the single-core CI container it reduces to
    :data:`LOCAL_SINGLE_CORE`.
    """
    import os

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    if cores <= 1:
        return LOCAL_SINGLE_CORE
    return MachineModel(
        name=f"host ({cores} cores, 1 NUMA node assumed)",
        cores=cores,
        numa_nodes=1,
        l1_bytes=32 * 1024,
        l2_bytes=1024 * 1024,
        l3_bytes_per_numa=32 * 1024 * 1024,
        mem_bw_per_numa=20e9,
        barrier_seconds=1e-6,
    )


#: This reproduction's environment: a single-core container.
LOCAL_SINGLE_CORE = MachineModel(
    name="single-core container",
    cores=1,
    numa_nodes=1,
    l1_bytes=32 * 1024,
    l2_bytes=1024 * 1024,
    l3_bytes_per_numa=32 * 1024 * 1024,
    mem_bw_per_numa=20e9,
    barrier_seconds=1e-6,
)
