"""Machine descriptions.

The :data:`XEON_6152` preset matches §4's evaluation platform: a
dual-socket Intel Xeon Gold 6152 @ 2.10 GHz, 22 cores per socket in
sub-NUMA clustering (2 NUMA nodes of 11 cores each per socket), two
AVX-512 units per core, 32 KB L1D and 1 MB L2 per core, 32 MB L3 and one
memory controller per NUMA node.

Besides the capacities and bandwidths the thread-scaling simulator
needs, a :class:`MachineModel` carries the per-event costs the *static
performance prover* (:mod:`repro.analysis.perf`) prices a schedule with:
peak floating-point rate, private-cache stream bandwidth, and fixed
per-tile / per-vector-invocation overheads. :data:`PY_NUMPY_BACKEND` is
calibrated to the executor that actually runs generated code in this
reproduction — NumPy slice kernels, whose per-call overhead dwarfs
per-cell arithmetic — so static predictions can be ranked against
measured runtimes on this container.

Model selection is shared by every perf client: the ``REPRO_MACHINE``
environment variable (or an explicit option / ``CompileOptions.machine``)
pins :func:`resolve_machine_model` to a named preset from
:data:`MACHINE_PRESETS`, making predictions and CI lint output
deterministic across hosts; unset, the host-calibrated model is used.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class MachineModel:
    """The parameters the thread-scaling simulator needs."""

    name: str
    cores: int
    numa_nodes: int
    l1_bytes: int
    l2_bytes: int
    l3_bytes_per_numa: int
    #: Sustainable DRAM bandwidth per NUMA node, bytes/second.
    mem_bw_per_numa: float
    #: Cost of one synchronization barrier across ``p`` threads, seconds
    #: (scaled by log2(p) in the simulator).
    barrier_seconds: float
    #: Throughput penalty factor for remote-NUMA traffic (>= 1).
    remote_penalty: float = 1.6
    #: Peak double-precision vector flop rate of one core, flops/second
    #: (the roofline ceiling of the static cost model).
    flops_per_core: float = 16.8e9
    #: Private-cache (L2) stream bandwidth of one core, bytes/second —
    #: prices halo re-reads that hit cache rather than DRAM.
    cache_bw: float = 100e9
    #: Fixed cost of entering one tile (loop setup, slice bookkeeping).
    tile_start_seconds: float = 2e-7
    #: Fixed cost of entering one innermost strip (loop-carried index
    #: arithmetic and per-access slice setup, paid once per unit-stride
    #: row regardless of its length). Near-free on hardware; dominant on
    #: the NumPy backend, where every strip rebuilds its slice views.
    strip_start_seconds: float = 2e-9
    #: Fixed cost of issuing one vector operation (per stencil access per
    #: VF-wide chunk) — models instruction issue on hardware and the
    #: per-call overhead of the NumPy vector unit on this backend.
    vector_call_seconds: float = 2e-8
    #: Multiplier on the per-tile/strip/call overheads once a tile's
    #: halo-inclusive working set no longer fits the private (L2) cache:
    #: every operand touch then comes from a slower level (the PF001
    #: regime).
    cache_spill_penalty: float = 1.25
    #: Milder multiplier for the middle tier — the tile fits L2 but its
    #: cross-strip reuse plane (the trailing plane of the halo window,
    #: re-read each time the outermost tile index advances) spills L1.
    #: Tiles whose reuse plane stays L1-resident reread halos for free.
    l1_spill_penalty: float = 1.05

    @property
    def cores_per_numa(self) -> int:
        return self.cores // self.numa_nodes

    @property
    def l3_bytes_total(self) -> int:
        return self.l3_bytes_per_numa * self.numa_nodes

    def numa_nodes_used(self, threads: int) -> int:
        """Threads fill NUMA nodes in order (compact pinning)."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        return min(
            self.numa_nodes, -(-threads // self.cores_per_numa)
        )

    def bandwidth_available(self, threads: int) -> float:
        """Aggregate DRAM bandwidth reachable by ``threads`` workers."""
        return self.numa_nodes_used(threads) * self.mem_bw_per_numa


#: The paper's platform (§4): 2 x Xeon Gold 6152, 44 cores, 4 NUMA nodes.
XEON_6152 = MachineModel(
    name="2x Intel Xeon Gold 6152 @ 2.10GHz",
    cores=44,
    numa_nodes=4,
    l1_bytes=32 * 1024,
    l2_bytes=1024 * 1024,
    l3_bytes_per_numa=32 * 1024 * 1024,
    mem_bw_per_numa=30e9,  # ~120 GB/s aggregate over 4 nodes
    barrier_seconds=4e-6,
)


#: This reproduction's environment: a single-core container.
LOCAL_SINGLE_CORE = MachineModel(
    name="single-core container",
    cores=1,
    numa_nodes=1,
    l1_bytes=32 * 1024,
    l2_bytes=1024 * 1024,
    l3_bytes_per_numa=32 * 1024 * 1024,
    mem_bw_per_numa=20e9,
    barrier_seconds=1e-6,
)


#: The executor of this reproduction: generated Python/NumPy kernels.
#: Capacities are the container's; the event costs are calibrated to the
#: NumPy backend, where a tile entry costs tens of microseconds of slice
#: bookkeeping and every vector invocation pays a NumPy call, so the
#: static cost model ranks tile candidates the way measured runtimes on
#: this backend do (benchmarks/test_pr8_static_cost.py audits this).
PY_NUMPY_BACKEND = MachineModel(
    name="python-numpy backend (calibrated)",
    cores=1,
    numa_nodes=1,
    l1_bytes=32 * 1024,
    l2_bytes=1024 * 1024,
    l3_bytes_per_numa=32 * 1024 * 1024,
    mem_bw_per_numa=20e9,
    barrier_seconds=1e-6,
    flops_per_core=1.0e9,
    cache_bw=10e9,
    tile_start_seconds=4e-5,
    strip_start_seconds=2e-5,
    vector_call_seconds=2.5e-6,
    cache_spill_penalty=1.15,
    l1_spill_penalty=1.08,
)


#: Environment variable pinning the machine model to a named preset.
MACHINE_ENV = "REPRO_MACHINE"

#: The named presets ``REPRO_MACHINE`` / ``CompileOptions.machine`` may
#: select. ``"host"`` explicitly requests the host-calibrated model.
MACHINE_PRESETS: Dict[str, MachineModel] = {
    "xeon-6152": XEON_6152,
    "single-core": LOCAL_SINGLE_CORE,
    "py-numpy": PY_NUMPY_BACKEND,
}


def _host_calibrated() -> MachineModel:
    """The raw host probe (no environment consultation)."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    if cores <= 1:
        return LOCAL_SINGLE_CORE
    return MachineModel(
        name=f"host ({cores} cores, 1 NUMA node assumed)",
        cores=cores,
        numa_nodes=1,
        l1_bytes=32 * 1024,
        l2_bytes=1024 * 1024,
        l3_bytes_per_numa=32 * 1024 * 1024,
        mem_bw_per_numa=20e9,
        barrier_seconds=1e-6,
    )


def host_machine_model() -> MachineModel:
    """A model calibrated to the machine actually running this process.

    When the ``REPRO_MACHINE`` environment variable names a preset, that
    preset is returned instead — the pin that makes perf predictions and
    CI lint output deterministic across hosts.

    Otherwise the core count comes from the scheduling affinity mask
    (the honest number inside containers); the memory system is assumed
    to be one NUMA node of commodity bandwidth. This is what the
    parallel-wavefront benchmark cross-checks its *measured* speedups
    against — on the single-core CI container it reduces to
    :data:`LOCAL_SINGLE_CORE`.
    """
    return resolve_machine_model()


def resolve_machine_model(explicit: Optional[str] = None) -> MachineModel:
    """The effective machine model: explicit name > ``REPRO_MACHINE`` >
    host calibration. ``"host"`` forces the host-calibrated model even
    when the environment pins a preset."""
    name = explicit or os.environ.get(MACHINE_ENV)
    if not name or name == "host":
        return _host_calibrated()
    try:
        return MACHINE_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown machine preset {name!r}; expected one of "
            f"{sorted(MACHINE_PRESETS)} or 'host'"
        ) from None
