"""Thread-scaling simulator.

Executes a *wavefront schedule* analytically: group ``g`` holds
``sizes[g]`` independent tiles of known single-thread cost; with ``p``
workers a group takes ``ceil(sizes[g] / p)`` rounds of tile work, and
every group boundary pays a barrier (the per-iteration synchronization
§4.2 blames for the scaling knees). Tile cost itself inflates when the
aggregate bandwidth demand of the active workers exceeds the NUMA
capacity reachable at that thread count, and when threads span several
NUMA nodes (remote traffic), reproducing the Fig. 13 saturation shape.

The single-thread tile cost is *measured* (a real run on this machine);
only the scaling is modeled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.machine.model import MachineModel


@dataclass
class WorkloadProfile:
    """What the simulator needs to know about one kernel configuration.

    Attributes
    ----------
    wavefront_sizes:
        Tiles per wavefront group, in execution order, for ONE sweep /
        iteration (from the compiler's CSR schedule or a baseline's
        tiling).
    tile_seconds:
        Measured single-thread wall-clock per tile.
    tile_bytes:
        Memory traffic per tile (working set streamed from memory);
        drives the bandwidth-saturation model.
    iterations:
        How many times the schedule executes (time steps / sweeps).
    """

    wavefront_sizes: List[int]
    tile_seconds: float
    tile_bytes: float
    iterations: int = 1

    @property
    def total_tiles(self) -> int:
        return sum(self.wavefront_sizes) * self.iterations


def _bandwidth_factor(
    machine: MachineModel, threads: int, active: int, profile: WorkloadProfile
) -> float:
    """Tile-time inflation from memory-bandwidth contention."""
    if profile.tile_seconds <= 0:
        return 1.0
    demand = active * profile.tile_bytes / profile.tile_seconds
    capacity = machine.bandwidth_available(threads)
    factor = max(1.0, demand / capacity)
    # Remote-NUMA traffic: a fraction of accesses crosses nodes once
    # threads span more than one node.
    nodes = machine.numa_nodes_used(threads)
    if nodes > 1:
        remote_fraction = 0.5 * (1.0 - 1.0 / nodes)
        factor *= 1.0 + remote_fraction * (machine.remote_penalty - 1.0)
    return factor


def simulate_wavefront_execution(
    profile: WorkloadProfile, threads: int, machine: MachineModel
) -> float:
    """Predicted wall-clock seconds for the whole run at ``threads``."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    barrier = (
        machine.barrier_seconds * max(1.0, math.log2(threads))
        if threads > 1
        else 0.0
    )
    per_iteration = 0.0
    for size in profile.wavefront_sizes:
        if size < 0:
            raise ValueError(f"negative wavefront group size {size}")
        if size == 0:
            # An empty group schedules no tiles and synchronizes nobody;
            # degenerate CSR payloads (empty grids, collapsed groups)
            # must not accrue barrier time.
            continue
        active = min(threads, size)
        rounds = -(-size // threads)
        tile_time = profile.tile_seconds * _bandwidth_factor(
            machine, threads, active, profile
        )
        per_iteration += rounds * tile_time
        if threads > 1:
            per_iteration += barrier
    return per_iteration * profile.iterations


def speedup_curve(
    profile: WorkloadProfile,
    machine: MachineModel,
    thread_counts: Sequence[int],
    baseline_seconds: float = None,
) -> Dict[int, float]:
    """Speedup (relative to ``baseline_seconds``, default the 1-thread
    simulated time) for each thread count."""
    if baseline_seconds is None:
        baseline_seconds = simulate_wavefront_execution(profile, 1, machine)
    return {
        p: baseline_seconds / simulate_wavefront_execution(profile, p, machine)
        for p in thread_counts
    }


def cell_time_curve(
    profile: WorkloadProfile,
    machine: MachineModel,
    thread_counts: Sequence[int],
    num_cells: int,
) -> Dict[int, float]:
    """The paper's Fig. 15 metric::

        t_cell = threads * elapsed / (iterations * cells)

    per thread count (seconds; the figure uses microseconds).
    """
    out = {}
    for p in thread_counts:
        elapsed = simulate_wavefront_execution(profile, p, machine)
        out[p] = p * elapsed / (profile.iterations * num_cells)
    return out


def profile_from_schedule(
    offsets, tile_seconds: float, tile_bytes: float, iterations: int = 1
) -> WorkloadProfile:
    """Build a profile straight from a CSR schedule's offsets array.

    Degenerate payloads are handled explicitly: an empty or single-entry
    offsets array means an empty schedule (no groups), and decreasing
    offsets are rejected — a negative group size is always a corrupted
    schedule, never a workload.
    """
    import numpy as np

    offsets = np.asarray(offsets)
    sizes = list(np.diff(offsets)) if offsets.size > 1 else []
    if any(s < 0 for s in sizes):
        raise ValueError(
            f"CSR offsets must be non-decreasing, got {offsets.tolist()}"
        )
    return WorkloadProfile(
        wavefront_sizes=[int(s) for s in sizes],
        tile_seconds=tile_seconds,
        tile_bytes=tile_bytes,
        iterations=iterations,
    )
