"""Reproduction of "Code Generation for In-Place Stencils" (CGO 2023).

A domain-specific code generator for iterative in-place stencils
(Gauss-Seidel / SOR), built on a pure-Python mini-MLIR:

* :mod:`repro.ir` — SSA IR core (types, attributes, ops, regions,
  printer/parser, verifier, rewriter, passes);
* :mod:`repro.dialects` — arith/math/func/scf/tensor/memref/vector/linalg
  plus the paper's ``cfd`` dialect;
* :mod:`repro.core` — the paper's contribution: stencil patterns, tiling
  with the in-place restriction, fusion after tiling, sub-domain wavefront
  scheduling, partial vectorization, and the compilation pipeline;
* :mod:`repro.codegen` — reference interpreter and NumPy-emitting backend;
* :mod:`repro.machine` — Xeon 6152 machine model and thread-scaling
  simulator;
* :mod:`repro.cfdlib` — CFD numerics substrate (meshes, Gauss-Seidel/SOR/
  Jacobi, 3D heat, 3D Euler with Roe flux and LU-SGS);
* :mod:`repro.baselines` — naive scalar, Pluto-like polyhedral, and
  elsA-like hand-optimized baselines;
* :mod:`repro.bench` — experiment harness regenerating every table and
  figure of the paper's evaluation.
"""

__version__ = "1.0.0"
