"""The stdio/socket front door: newline-delimited JSON over
:class:`~repro.service.server.CompileService`.

Wire protocol (one JSON object per line, in either direction)::

    -> {"op": "compile", "id": 7, "ir": "<module text>",
        "entry": "kernel", "options": {"tile_sizes": [2, 2]},
        "deadline": 2.0}
    <- {"op": "compile", "id": 7, "status": "ok", ...}

    -> {"op": "execute", "id": 8, "ir": "...", "args": [[[0.0, ...]]]}
    <- {"op": "execute", "id": 8, "status": "ok",
        "values": [[[...]]], ...}

    -> {"op": "stats", "id": 9}
    <- {"op": "stats", "id": 9, "report": {...}}

    -> {"op": "drain", "id": 10}
    <- {"op": "drain", "id": 10, "status": "drained"}

``execute`` arguments arrive as nested lists and are materialized as
float64 arrays; result values travel back the same way. Requests are
dispatched concurrently — a slow compile does not block the next line
from being read — so single-flight dedup and admission control apply
across a pipelined client exactly as they do for in-process callers.
A malformed line produces a structured ``{"status": "failed"}`` reply
on that line's ``id`` (when one could be parsed) rather than killing
the session.
"""

from __future__ import annotations

import asyncio
import json
import sys
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, Optional, TextIO

import numpy as np

from repro.core.pipeline import CompileOptions
from repro.ir.parser import parse_module
from repro.service.config import ServiceConfig
from repro.service.server import CompileService

#: CompileOptions fields that are tuples in Python but lists in JSON.
_TUPLE_FIELDS = ("subdomain_sizes", "tile_sizes")


def options_from_json(data: Optional[Dict[str, Any]]) -> Optional[CompileOptions]:
    """Build :class:`CompileOptions` from a wire dict (``None`` passes
    through, meaning "use the service default"). Unknown keys are an
    error — a typoed option silently ignored would compile the wrong
    configuration."""
    if data is None:
        return None
    known = {f.name for f in dataclass_fields(CompileOptions)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown compile option(s): {sorted(unknown)}")
    coerced = dict(data)
    for name in _TUPLE_FIELDS:
        if coerced.get(name) is not None:
            coerced[name] = tuple(int(v) for v in coerced[name])
    return CompileOptions(**coerced)


def _json_values(values):
    if values is None:
        return None
    out = []
    for v in values:
        out.append(v.tolist() if isinstance(v, np.ndarray) else v)
    return out


async def handle_request(
    service: CompileService, request: Dict[str, Any]
) -> Dict[str, Any]:
    """Serve one decoded wire request; always returns a reply dict."""
    op = request.get("op")
    rid = request.get("id")
    try:
        if op == "stats":
            return {"op": op, "id": rid,
                    "report": service.report().to_json()}
        if op == "drain":
            await service.drain()
            return {"op": op, "id": rid, "status": "drained"}
        if op not in ("compile", "execute"):
            raise ValueError(f"unknown op {op!r}")
        module = parse_module(request["ir"])
        entry = request.get("entry", "kernel")
        options = options_from_json(request.get("options"))
        deadline = request.get("deadline")
        if op == "compile":
            resp = await service.compile(
                module, entry=entry, options=options, deadline=deadline
            )
        else:
            arrays = [
                np.asarray(a, dtype=np.float64) for a in request["args"]
            ]
            resp = await service.execute(
                module,
                lambda: tuple(np.array(a) for a in arrays),
                entry=entry, options=options, deadline=deadline,
            )
        reply = resp.to_json()
        reply["values"] = _json_values(reply.get("values"))
        reply.update(op=op, id=rid)
        return reply
    except Exception as exc:  # noqa: BLE001 - protocol error boundary
        return {
            "op": op,
            "id": rid,
            "status": "failed",
            "error": f"{type(exc).__name__}: {exc}",
        }


async def serve_stdio(
    service: CompileService,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> None:
    """Serve newline-JSON requests from ``stdin`` until EOF, then drain.

    Each line is dispatched as its own task so requests overlap; one
    writer lock keeps reply lines whole.
    """
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    tasks: set = set()

    async def dispatch(line: str) -> None:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            reply = {"status": "failed", "error": f"bad JSON: {exc}"}
        else:
            reply = await handle_request(service, request)
        async with write_lock:
            stdout.write(json.dumps(reply) + "\n")
            stdout.flush()

    while True:
        line = await loop.run_in_executor(None, stdin.readline)
        if not line:
            break
        if not line.strip():
            continue
        task = asyncio.ensure_future(dispatch(line))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)
    await service.drain()


async def serve_socket(
    service: CompileService, host: str, port: int
) -> asyncio.AbstractServer:
    """Serve the same newline-JSON protocol over a TCP socket.

    Returns the listening server; the caller owns its lifetime (see
    ``python -m repro.service --port``).
    """

    async def on_connect(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set = set()

        async def dispatch(raw: bytes) -> None:
            try:
                request = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                reply = {"status": "failed", "error": f"bad JSON: {exc}"}
            else:
                reply = await handle_request(service, request)
            async with write_lock:
                writer.write((json.dumps(reply) + "\n").encode("utf-8"))
                await writer.drain()

        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                if not raw.strip():
                    continue
                task = asyncio.ensure_future(dispatch(raw))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            writer.close()

    return await asyncio.start_server(on_connect, host, port)


async def run_stdio(config: Optional[ServiceConfig] = None) -> None:
    service = CompileService(config)
    await serve_stdio(service)


async def run_socket(
    host: str, port: int, config: Optional[ServiceConfig] = None
) -> None:
    service = CompileService(config)
    server = await serve_socket(service, host, port)
    async with server:
        await server.serve_forever()
