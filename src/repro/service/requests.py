"""Request/response types of the compile service."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.runtime.resilience.report import RecoveryReport

#: Every terminal request state. The accounting invariant of the chaos
#: suite: a submitted request always reaches exactly one of these.
STATUSES = ("ok", "rejected", "deadline", "failed")


@dataclass
class ServiceResponse:
    """The structured outcome of one service request.

    ``status`` is one of :data:`STATUSES`:

    * ``"ok"`` — a kernel was produced (possibly degraded: see
      ``degraded_to`` and the attached per-request ``report``); for
      execute requests ``values`` holds the results.
    * ``"rejected"`` — admission control refused the request (RS012
      backpressure with a ``retry_after`` hint, or RS016 draining).
    * ``"deadline"`` — the request's deadline expired (RS013).
    * ``"failed"`` — the request was admitted but could not be served
      even by the fallbacks; ``diagnostics`` explains why.
    """

    status: str
    request_id: int = 0
    fingerprint: str = ""
    kernel: Any = None
    values: Optional[List[Any]] = None
    #: The per-request resilient-compile audit trail (cold path only).
    report: Optional[RecoveryReport] = None
    #: Service-layer diagnostics (RS012–RS016, RS005/RS006 …).
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Backpressure hint in seconds (RS012 rejections only).
    retry_after: Optional[float] = None
    #: Degradation label when the request was load-shed or the
    #: degradation chain engaged ("opt_level -> O0", "interpreter", …).
    degraded_to: Optional[str] = None
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown response status {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def codes(self) -> List[str]:
        """Every RS/IP/TV code attached to this response."""
        codes = [d.code for d in self.diagnostics]
        if self.report is not None:
            codes.extend(self.report.codes())
        return codes

    def to_json(self) -> Dict[str, Any]:
        """Wire form for the stdio/socket front door (no kernel object;
        execute values are nested lists)."""
        return {
            "status": self.status,
            "id": self.request_id,
            "fingerprint": self.fingerprint,
            "retry_after": self.retry_after,
            "degraded_to": self.degraded_to,
            "latency": self.latency,
            "values": self.values,
            "diagnostics": [
                {"code": d.code, "severity": d.severity, "message": d.message}
                for d in self.diagnostics
            ],
            "report": self.report.to_json() if self.report else None,
        }
