"""``repro.service`` — the async compile/execute service.

A production front door over the compilation stack: single-flight
dedup keyed on pipeline fingerprints, admission control with
backpressure, degradation-chain load shedding, per-request deadlines,
graceful drain, and a ServiceReport health surface. In-process API in
:mod:`~repro.service.server`; ``python -m repro.service`` serves the
same service over newline-JSON stdio or a TCP socket.

Heavy modules load lazily (PEP 562) like the rest of the package.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "CompileService": "repro.service.server",
    "ServiceClosed": "repro.service.server",
    "ServiceConfig": "repro.service.config",
    "ServiceResponse": "repro.service.requests",
    "STATUSES": "repro.service.requests",
    "ServiceReport": "repro.service.stats",
    "ServiceStats": "repro.service.stats",
    "percentile": "repro.service.stats",
    "handle_request": "repro.service.frontdoor",
    "options_from_json": "repro.service.frontdoor",
    "serve_socket": "repro.service.frontdoor",
    "serve_stdio": "repro.service.frontdoor",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static import surface
    from repro.service.config import ServiceConfig
    from repro.service.frontdoor import (
        handle_request,
        options_from_json,
        serve_socket,
        serve_stdio,
    )
    from repro.service.requests import STATUSES, ServiceResponse
    from repro.service.server import CompileService, ServiceClosed
    from repro.service.stats import ServiceReport, ServiceStats, percentile


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
