"""The async compile/execute service: :class:`CompileService`.

A long-lived front door over the existing compilation stack, built for
overload rather than straight-line speed. One event loop owns all
coordination state (no locks); compile and execute jobs run on a
bounded thread pool. The robustness machinery, in request order:

* **Warm fast path** — the request fingerprint (the same sha256 the
  kernel cache uses) is checked against the cache before admission;
  a hit answers immediately without consuming queue capacity.
* **Admission control** — at most ``max_queue`` requests may be
  pending; beyond that the request is *rejected* (RS012) with a
  retry-after hint derived from the observed service-time EWMA,
  instead of growing an unbounded queue. A draining service rejects
  with RS016.
* **Load shedding** — under queue pressure newly admitted compiles
  walk the degradation chain at admission time: past
  ``shed_watermark`` they compile at ``opt_level=0``, past
  ``shed_floor`` they skip compilation entirely and are served by the
  reference interpreter. Every decision is recorded per request
  (RS015).
* **Single-flight dedup** — concurrent requests for one fingerprint
  share one leader compilation (futures keyed on fingerprint). When a
  leader crashes or is watchdog-killed, its waiters all wake (the
  flight is removed *before* the task completes, so nobody re-joins a
  dead flight) and the first to re-enter is promoted to a new leader —
  exactly one re-dispatch per failure round (RS014), with exponential
  backoff plus jitter. A crashed leader can never strand waiters.
* **Deadlines** — each request may carry a wall-clock budget; expiry
  returns a structured RS013 response. The shared leader task is
  deliberately *not* cancelled: other waiters (and the cache) still
  want its result.
* **Graceful drain** — :meth:`drain` stops admission (RS016), lets
  every in-flight flight finish (an injected ``service.drain`` fault
  becomes an RS009 finding, never a lost request), then shuts the
  worker pool down.

Each cold compile runs through the PR-5
:class:`~repro.runtime.resilience.driver.ResilientCompiler` (snapshot
retries, degradation chain, interpreter fallback), now
certificate-memo-aware, so with ``validate_passes=True`` a fingerprint
verified once — even by another process, via the memo's disk tier — is
never re-verified. The per-request
:class:`~repro.runtime.resilience.report.RecoveryReport` rides on the
response; the service-level view is a
:class:`~repro.service.stats.ServiceReport`.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import replace
from functools import partial
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.codegen.cache import KernelCache, default_cache, module_fingerprint
from repro.core.pipeline import CompileOptions
from repro.ir.module import ModuleOp
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.runtime.resilience.driver import InterpreterKernel, ResilientCompiler
from repro.runtime.resilience.execution import execute_kernel
from repro.runtime.resilience.faults import InjectedFault, maybe_inject
from repro.runtime.resilience.report import RecoveryReport
from repro.runtime.resilience.watchdog import call_with_watchdog
from repro.service.config import ServiceConfig
from repro.service.requests import ServiceResponse
from repro.service.stats import ServiceReport, ServiceStats


class ServiceClosed(RuntimeError):
    """A request was submitted after :meth:`CompileService.drain`
    completed and the service shut down its worker pool."""


class _Flight:
    """One in-flight leader compilation, shared by its waiters."""

    __slots__ = ("fingerprint", "task", "joiners")

    def __init__(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.task: Optional[asyncio.Task] = None
        self.joiners = 0


class CompileService:
    """See the module docstring. All public request methods are
    coroutines and must run on one event loop; jobs execute on the
    internal thread pool."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        cache: Optional[KernelCache] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._cache = cache if cache is not None else default_cache()
        self.stats = ServiceStats()
        self._events: list[Diagnostic] = []
        self._requests: list[Dict[str, Any]] = []
        self._flights: Dict[str, _Flight] = {}
        self._pending = 0
        self._inflight = 0
        self._draining = False
        self._closed = False
        self._next_id = 0
        self._ewma_latency = 0.05
        self._slots = asyncio.Semaphore(self.config.workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )

    # ---- public API -----------------------------------------------------

    async def compile(
        self,
        module: ModuleOp,
        entry: str = "kernel",
        options: Optional[CompileOptions] = None,
        deadline: Optional[float] = None,
    ) -> ServiceResponse:
        """Serve one compile request; always returns a response."""
        return await self._handle(module, entry, options, deadline, None)

    async def execute(
        self,
        module: ModuleOp,
        make_args: Callable[[], Tuple[Any, ...]],
        entry: str = "kernel",
        options: Optional[CompileOptions] = None,
        deadline: Optional[float] = None,
    ) -> ServiceResponse:
        """Compile (deduped/cached like :meth:`compile`) then execute.

        ``make_args`` must return a fresh argument tuple (kernels write
        into their outputs). The execution happens exactly once per
        successful request — a failure is returned as a structured
        RS005/RS006 response, never silently retried, so the service's
        accounting invariant (no double execution) holds by
        construction.
        """
        return await self._handle(module, entry, options, deadline, make_args)

    async def drain(self, poll: float = 0.005) -> None:
        """Graceful shutdown: reject new work, finish in-flight work.

        Idempotent. After it returns every previously admitted request
        has produced a response and the worker pool is shut down.
        """
        self._draining = True
        while self._flights or self._pending:
            flights = [f for f in self._flights.values() if f.task is not None]
            for flight in flights:
                try:
                    maybe_inject("service.drain", fingerprint=flight.fingerprint)
                except InjectedFault as exc:
                    # The drain path itself faulted: convert to a
                    # finding and keep draining — the flight's waiters
                    # still get their responses.
                    self._event(
                        "RS009",
                        f"drain finalization for "
                        f"{flight.fingerprint[:12]}… faulted ({exc}); "
                        f"continuing to drain",
                    )
            if flights:
                await asyncio.wait(
                    [f.task for f in flights],
                    return_when=asyncio.ALL_COMPLETED,
                )
            else:
                # Waiters are finishing their response bookkeeping.
                await asyncio.sleep(poll)
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)

    def report(self) -> ServiceReport:
        """The health/stats surface: a point-in-time ServiceReport."""
        return ServiceReport(
            events=list(self._events),
            requests=list(self._requests),
            stats=self.snapshot(),
        )

    def snapshot(self) -> Dict[str, Any]:
        """The raw stats block of :meth:`report`."""
        st = self.stats
        lat = sorted(st.latencies)
        from repro.service.stats import percentile

        return {
            "queue_depth": self._pending,
            "inflight": self._inflight,
            "draining": self._draining,
            "closed": self._closed,
            "workers": self.config.workers,
            "max_queue": self.config.max_queue,
            "accepted": st.accepted,
            "completed": st.completed,
            "failed": st.failed,
            "rejected_backpressure": st.rejected_backpressure,
            "rejected_draining": st.rejected_draining,
            "deadlines_expired": st.deadlines_expired,
            "cache_hits": st.cache_hits,
            "single_flight_hits": st.single_flight_hits,
            "single_flight_hit_rate": st.single_flight_hit_rate,
            "compiles_started": st.compiles_started,
            "compiles_succeeded": st.compiles_succeeded,
            "redispatches": st.redispatches,
            "executions": st.executions,
            "shed": dict(st.shed),
            "degradations": dict(st.degradations),
            "p50_latency": percentile(lat, 50),
            "p99_latency": percentile(lat, 99),
            "latency_samples": len(lat),
        }

    # ---- request lifecycle ----------------------------------------------

    async def _handle(
        self,
        module: ModuleOp,
        entry: str,
        options: Optional[CompileOptions],
        deadline: Optional[float],
        make_args: Optional[Callable[[], Tuple[Any, ...]]],
    ) -> ServiceResponse:
        if self._closed:
            raise ServiceClosed("the service has drained and shut down")
        start = time.perf_counter()
        self._next_id += 1
        rid = self._next_id
        opts = options if options is not None else replace(self.config.options)
        budget = deadline if deadline is not None else \
            self.config.default_deadline
        ctx: Dict[str, Any] = {"fingerprint": ""}
        try:
            coro = self._process(module, entry, opts, make_args, ctx)
            if budget is not None:
                resp = await asyncio.wait_for(coro, budget)
            else:
                resp = await coro
        except asyncio.TimeoutError:
            self.stats.deadlines_expired += 1
            diag = self._event(
                "RS013",
                f"request {rid} exceeded its {budget:g}s deadline "
                f"(fingerprint {ctx['fingerprint'][:12]}…); any shared "
                f"compilation continues for other waiters",
            )
            resp = ServiceResponse(
                "deadline",
                fingerprint=ctx["fingerprint"],
                diagnostics=[diag],
            )
        return self._finish(rid, resp, start)

    async def _process(
        self,
        module: ModuleOp,
        entry: str,
        opts: CompileOptions,
        make_args: Optional[Callable[[], Tuple[Any, ...]]],
        ctx: Dict[str, Any],
    ) -> ServiceResponse:
        pristine = print_module(module)
        fingerprint = module_fingerprint(module, entry, opts.cache_key())
        ctx["fingerprint"] = fingerprint
        degraded_to: Optional[str] = None
        shed_diags: list[Diagnostic] = []

        # Warm fast path: a cache hit answers without queue capacity.
        kernel = self._cache.get(fingerprint) if opts.use_cache else None
        if kernel is not None:
            self.stats.cache_hits += 1
            self.stats.accepted += 1
            return await self._maybe_execute(
                ServiceResponse("ok", fingerprint=fingerprint, kernel=kernel),
                make_args, entry,
            )

        # Admission control.
        if self._draining:
            self.stats.rejected_draining += 1
            diag = self._event(
                "RS016",
                "request rejected: the service is draining "
                "(in-flight requests are being finished)",
            )
            return ServiceResponse(
                "rejected", fingerprint=fingerprint, diagnostics=[diag]
            )
        if self._pending >= self.config.max_queue:
            return self._reject_backpressure(
                fingerprint,
                f"bounded queue full ({self._pending}/"
                f"{self.config.max_queue} pending)",
            )

        # Load shedding: walk the degradation chain at admission time.
        pressure = self._pending / self.config.max_queue
        if pressure >= self.config.shed_floor:
            degraded_to = "interpreter"
            self.stats.shed[degraded_to] = \
                self.stats.shed.get(degraded_to, 0) + 1
            shed_diags.append(self._event(
                "RS015",
                f"queue pressure {pressure:.0%} >= floor "
                f"{self.config.shed_floor:.0%}: serving "
                f"{fingerprint[:12]}… from the reference interpreter "
                f"without compiling",
            ))
            self.stats.accepted += 1
            return await self._maybe_execute(
                ServiceResponse(
                    "ok",
                    fingerprint=fingerprint,
                    kernel=InterpreterKernel(pristine, entry),
                    degraded_to=degraded_to,
                    diagnostics=shed_diags,
                ),
                make_args, entry,
            )
        if pressure >= self.config.shed_watermark and opts.opt_level > 0:
            degraded_to = "opt_level -> O0"
            opts = replace(opts, opt_level=0)
            self.stats.shed[degraded_to] = \
                self.stats.shed.get(degraded_to, 0) + 1
            shed_diags.append(self._event(
                "RS015",
                f"queue pressure {pressure:.0%} >= watermark "
                f"{self.config.shed_watermark:.0%}: admitting "
                f"{fingerprint[:12]}… at O0 instead of "
                f"O{self.config.options.opt_level}",
            ))
            fingerprint = module_fingerprint(module, entry, opts.cache_key())
            ctx["fingerprint"] = fingerprint
            kernel = self._cache.get(fingerprint) if opts.use_cache else None
            if kernel is not None:
                self.stats.cache_hits += 1
                self.stats.accepted += 1
                return await self._maybe_execute(
                    ServiceResponse(
                        "ok",
                        fingerprint=fingerprint,
                        kernel=kernel,
                        degraded_to=degraded_to,
                        diagnostics=shed_diags,
                    ),
                    make_args, entry,
                )

        # The queue stage itself is a fault site: an injected failure
        # becomes an explicit rejection, never a lost request.
        try:
            maybe_inject("service.queue", fingerprint=fingerprint)
        except InjectedFault as exc:
            return self._reject_backpressure(
                fingerprint, f"admission stage faulted ({exc})"
            )

        self.stats.accepted += 1
        self._pending += 1
        try:
            kernel, report = await self._single_flight(
                fingerprint, pristine, opts, entry
            )
        except asyncio.CancelledError:
            raise  # deadline expiry propagates to _handle
        except Exception as exc:  # noqa: BLE001 - terminal, structured
            diag = self._event(
                "RS009",
                f"compile of {fingerprint[:12]}… failed beyond every "
                f"retry and fallback: {type(exc).__name__}: {exc}",
            )
            self.stats.failed += 1
            return ServiceResponse(
                "failed",
                fingerprint=fingerprint,
                degraded_to=degraded_to,
                diagnostics=shed_diags + [diag],
            )
        finally:
            self._pending -= 1

        if report is not None:
            for label in report.degradations:
                self.stats.degradations[label] = \
                    self.stats.degradations.get(label, 0) + 1
            if report.final == "interpreter":
                self.stats.degradations["interpreter-fallback"] = \
                    self.stats.degradations.get("interpreter-fallback", 0) + 1
                degraded_to = degraded_to or "interpreter"
            elif report.degradations:
                degraded_to = degraded_to or report.degradations[-1]
        return await self._maybe_execute(
            ServiceResponse(
                "ok",
                fingerprint=fingerprint,
                kernel=kernel,
                report=report,
                degraded_to=degraded_to,
                diagnostics=shed_diags,
            ),
            make_args, entry,
        )

    def _reject_backpressure(
        self, fingerprint: str, why: str
    ) -> ServiceResponse:
        self.stats.rejected_backpressure += 1
        retry_after = max(
            0.01,
            (self._pending + 1) * self._ewma_latency
            / max(1, self.config.workers),
        )
        diag = self._event(
            "RS012",
            f"request for {fingerprint[:12]}… rejected: {why}; "
            f"retry after ~{retry_after:.3f}s",
        )
        return ServiceResponse(
            "rejected",
            fingerprint=fingerprint,
            diagnostics=[diag],
            retry_after=retry_after,
        )

    async def _maybe_execute(
        self,
        resp: ServiceResponse,
        make_args: Optional[Callable[[], Tuple[Any, ...]]],
        entry: str,
    ) -> ServiceResponse:
        if make_args is None or not resp.ok:
            return resp
        loop = asyncio.get_running_loop()
        self.stats.executions += 1
        outcome = await loop.run_in_executor(
            self._executor,
            partial(
                execute_kernel,
                resp.kernel,
                *make_args(),
                timeout=self.config.execute_watchdog,
                what=f"service execute of entry {entry!r}",
            ),
        )
        if outcome.ok:
            resp.values = outcome.values
            return resp
        self.stats.failed += 1
        self._events.append(outcome.diagnostic)
        resp.diagnostics.append(outcome.diagnostic)
        return ServiceResponse(
            "failed",
            fingerprint=resp.fingerprint,
            report=resp.report,
            degraded_to=resp.degraded_to,
            diagnostics=resp.diagnostics,
        )

    # ---- single-flight --------------------------------------------------

    async def _single_flight(
        self,
        fingerprint: str,
        pristine: str,
        opts: CompileOptions,
        entry: str,
    ) -> Tuple[Any, Optional[RecoveryReport]]:
        """Await (or become) the leader compiling ``fingerprint``.

        On leader failure every waiter wakes — the flight is removed
        from the table *inside* the leader task, before it completes,
        so a waking waiter can never re-join a dead flight — and the
        first re-entrant waiter is promoted to a new leader: exactly
        one re-dispatch per failure round (RS014).
        """
        attempts = 0
        while True:
            flight = self._flights.get(fingerprint)
            if flight is None:
                flight = _Flight(fingerprint)
                self._flights[fingerprint] = flight
                flight.task = asyncio.ensure_future(
                    self._lead(flight, pristine, opts, entry)
                )
                # Retrieve the exception even when every waiter timed
                # out (asyncio would otherwise warn at GC time).
                flight.task.add_done_callback(
                    lambda t: t.exception() if not t.cancelled() else None
                )
                if attempts:
                    self.stats.redispatches += 1
            else:
                self.stats.single_flight_hits += 1
            flight.joiners += 1
            try:
                return await asyncio.shield(flight.task)
            except asyncio.CancelledError:
                raise  # our own deadline; the flight keeps running
            except Exception as exc:  # noqa: BLE001 - loser wakeup
                attempts += 1
                if attempts > self.config.max_retries:
                    raise
                self._event(
                    "RS014",
                    f"single-flight leader for {fingerprint[:12]}… "
                    f"failed ({type(exc).__name__}: {exc}); "
                    f"re-dispatching (attempt {attempts}/"
                    f"{self.config.max_retries})",
                )
                await asyncio.sleep(self._backoff(attempts))
            finally:
                flight.joiners -= 1

    async def _lead(
        self, flight: _Flight, pristine: str, opts: CompileOptions, entry: str
    ) -> Tuple[Any, RecoveryReport]:
        self.stats.compiles_started += 1
        loop = asyncio.get_running_loop()
        try:
            async with self._slot():
                self._inflight += 1
                try:
                    kernel, report, final_opts = await loop.run_in_executor(
                        self._executor,
                        self._compile_job,
                        flight.fingerprint, pristine, opts, entry,
                    )
                finally:
                    self._inflight -= 1
        finally:
            # Remove the flight before this task is marked done: a
            # waiter waking on failure must find the table empty and
            # promote itself instead of re-joining a dead flight.
            if self._flights.get(flight.fingerprint) is flight:
                del self._flights[flight.fingerprint]
        self.stats.compiles_succeeded += 1
        if opts.use_cache and report.final == "compiled":
            # Key degraded kernels under their *actual* configuration:
            # an uncontended future request at full quality must not
            # alias to a degraded artifact.
            actual = flight.fingerprint
            if final_opts is not None and \
                    final_opts.cache_key() != opts.cache_key():
                actual = module_fingerprint(
                    parse_module(pristine), entry, final_opts.cache_key()
                )
            self._cache.put(actual, kernel)
        return kernel, report

    def _slot(self):
        class _Slot:
            def __init__(self, sem: asyncio.Semaphore) -> None:
                self._sem = sem

            async def __aenter__(self):
                await self._sem.acquire()

            async def __aexit__(self, *exc):
                self._sem.release()

        return _Slot(self._slots)

    def _compile_job(
        self, fingerprint: str, pristine: str, opts: CompileOptions, entry: str
    ) -> Tuple[Any, RecoveryReport, Optional[CompileOptions]]:
        """The leader's job (worker thread): fault site, watchdog,
        resilient compile."""

        def job():
            maybe_inject("service.leader", fingerprint=fingerprint)
            driver = ResilientCompiler(
                opts,
                max_retries=self.config.pipeline_retries,
                backoff_base=self.config.backoff_base,
            )
            kernel, report = driver.compile(parse_module(pristine), entry)
            return kernel, report, driver.final_options

        if self.config.compile_watchdog is not None:
            return call_with_watchdog(
                job,
                self.config.compile_watchdog,
                what=f"leader compile of {fingerprint[:12]}…",
            )
        return job()

    # ---- bookkeeping ----------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        base = self.config.backoff_base * (2 ** (attempt - 1))
        return base * (1.0 + self.config.jitter * random.random())

    def _event(
        self, code: str, message: str, severity: Optional[str] = None
    ) -> Diagnostic:
        from repro.analysis.diagnostics import REGISTRY

        diag = Diagnostic(
            code, message, severity=severity or REGISTRY[code].severity
        )
        self._events.append(diag)
        return diag

    def _finish(
        self, rid: int, resp: ServiceResponse, start: float
    ) -> ServiceResponse:
        resp.request_id = rid
        resp.latency = time.perf_counter() - start
        self.stats.observe_latency(resp.latency, self.config.latency_window)
        self._ewma_latency = 0.8 * self._ewma_latency + 0.2 * resp.latency
        if resp.status == "ok":
            self.stats.completed += 1
        self._requests.append({
            "id": rid,
            "status": resp.status,
            "fingerprint": resp.fingerprint[:16],
            "codes": resp.codes(),
            "degraded_to": resp.degraded_to,
            "retry_after": resp.retry_after,
            "latency": resp.latency,
        })
        if len(self._requests) > self.config.latency_window:
            del self._requests[
                : len(self._requests) - self.config.latency_window
            ]
        return resp
