"""Configuration of the compile service (:class:`ServiceConfig`)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.pipeline import CompileOptions


@dataclass
class ServiceConfig:
    """Tuning knobs of one :class:`~repro.service.server.CompileService`.

    Attributes
    ----------
    options:
        Default :class:`CompileOptions` for requests that do not carry
        their own (the front door's per-request ``options`` override).
    workers:
        Size of the thread pool running compile/execute jobs. NumPy
        slice kernels and the pipeline release the GIL rarely, so this
        bounds CPU oversubscription, not just concurrency.
    max_queue:
        Admission bound: requests beyond ``max_queue`` pending are
        rejected with RS012 and a retry-after hint instead of queuing
        unboundedly.
    shed_watermark:
        Queue-pressure fraction (``pending / max_queue``) at or above
        which newly admitted compiles are downgraded to ``opt_level=0``
        (RS015) — the first step of the degradation chain.
    shed_floor:
        Pressure fraction at or above which new compiles skip
        compilation entirely and are served by the reference
        interpreter (RS015; slow but unconditionally available).
    default_deadline:
        Wall-clock budget per request in seconds (``None`` disables);
        per-request deadlines override. Expiry produces an RS013
        response; a shared compilation keeps running for other waiters.
    max_retries:
        Single-flight re-dispatch budget per request: how many times a
        waiter may be promoted to a new leader after the previous
        leader crashed (RS014).
    backoff_base:
        First re-dispatch backoff in seconds; doubles per attempt.
    jitter:
        Randomized fraction added to every backoff sleep (0.5 means up
        to +50%), decorrelating retry stampedes across waiters.
    pipeline_retries:
        ``max_retries`` handed to the per-request
        :class:`~repro.runtime.resilience.driver.ResilientCompiler`
        (snapshot retries and degradation-chain attempts).
    compile_watchdog:
        Wall-clock budget for one leader compile job; a hung leader is
        abandoned by the watchdog (RS006 inside the job) and its
        waiters re-dispatch exactly once per round (RS014). ``None``
        disables.
    execute_watchdog:
        Wall-clock budget per kernel execution (RS006). ``None``
        disables.
    latency_window:
        How many request latencies (and per-request summaries) the
        stats surface retains for the p50/p99 estimates.
    """

    options: CompileOptions = field(default_factory=CompileOptions)
    workers: int = 2
    max_queue: int = 32
    shed_watermark: float = 0.5
    shed_floor: float = 0.875
    default_deadline: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.005
    jitter: float = 0.5
    pipeline_retries: int = 2
    compile_watchdog: Optional[float] = None
    execute_watchdog: Optional[float] = None
    latency_window: int = 1024

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if not (0.0 <= self.shed_watermark <= self.shed_floor):
            raise ValueError(
                "need 0 <= shed_watermark <= shed_floor "
                f"(got {self.shed_watermark} / {self.shed_floor})"
            )
        if self.max_retries < 0 or self.pipeline_retries < 0:
            raise ValueError("retry budgets must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
