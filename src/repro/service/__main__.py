"""``python -m repro.service`` — run the compile service front door.

Stdio mode (default) speaks newline-delimited JSON on stdin/stdout;
``--port`` serves the same protocol on a TCP socket instead. See
:mod:`repro.service.frontdoor` for the wire protocol.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.service.config import ServiceConfig
from repro.service.frontdoor import run_socket, run_stdio


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="async stencil compile/execute service "
        "(newline-JSON over stdio, or TCP with --port)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for --port mode")
    parser.add_argument("--port", type=int, default=None,
                        help="serve a TCP socket instead of stdio")
    parser.add_argument("--workers", type=int, default=2,
                        help="compile/execute worker threads")
    parser.add_argument("--max-queue", type=int, default=32,
                        help="admission bound (RS012 beyond this)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="default per-request deadline in seconds")
    parser.add_argument("--compile-watchdog", type=float, default=None,
                        help="wall-clock budget per leader compile job")
    args = parser.parse_args(argv)

    config = ServiceConfig(
        workers=args.workers,
        max_queue=args.max_queue,
        default_deadline=args.deadline,
        compile_watchdog=args.compile_watchdog,
    )
    try:
        if args.port is not None:
            asyncio.run(run_socket(args.host, args.port, config))
        else:
            asyncio.run(run_stdio(config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
