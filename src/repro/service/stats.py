"""The service's health/stats surface: :class:`ServiceStats` counters
and the :class:`ServiceReport` audit trail.

:class:`ServiceReport` mirrors
:class:`~repro.runtime.resilience.report.RecoveryReport` one level up:
where a ``RecoveryReport`` explains how one compile survived, a
``ServiceReport`` explains how the *service* behaved across requests —
every admission rejection, deadline expiry, single-flight re-dispatch
and load-shed decision lands here as an RS-coded diagnostic, next to a
stats snapshot (queue depth, in-flight, hit rates, degradation counts,
p50/p99 latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.diagnostics import REGISTRY, Diagnostic


def percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_samples:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    rank = max(0, min(len(sorted_samples) - 1,
                      int(round(q / 100.0 * (len(sorted_samples) - 1)))))
    return sorted_samples[rank]


@dataclass
class ServiceStats:
    """Live counters of one :class:`~repro.service.server.CompileService`.

    Mutated only from the event loop (and read by :meth:`snapshot`), so
    no locking is needed.
    """

    accepted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_backpressure: int = 0
    rejected_draining: int = 0
    deadlines_expired: int = 0
    cache_hits: int = 0
    single_flight_hits: int = 0
    compiles_started: int = 0
    compiles_succeeded: int = 0
    redispatches: int = 0
    executions: int = 0
    #: Load-shed decisions per label ("opt_level -> O0", "interpreter").
    shed: Dict[str, int] = field(default_factory=dict)
    #: Degradation-chain steps taken inside compile jobs, per label.
    degradations: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)

    def observe_latency(self, seconds: float, window: int) -> None:
        self.latencies.append(seconds)
        if len(self.latencies) > window:
            del self.latencies[: len(self.latencies) - window]

    @property
    def single_flight_hit_rate(self) -> float:
        """Fraction of compile dispatches that joined an existing flight."""
        total = self.single_flight_hits + self.compiles_started
        return self.single_flight_hits / total if total else 0.0


@dataclass
class ServiceReport:
    """A point-in-time, JSON-stable view of the service's behaviour.

    ``events`` are the service-layer RS diagnostics, ``requests`` the
    per-request summaries (bounded window), ``stats`` the counter
    snapshot including queue depth and latency percentiles.
    """

    events: List[Diagnostic] = field(default_factory=list)
    requests: List[Dict[str, Any]] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    def add_event(
        self, code: str, message: str, severity: Optional[str] = None
    ) -> Diagnostic:
        diag = Diagnostic(
            code, message, severity=severity or REGISTRY[code].severity
        )
        self.events.append(diag)
        return diag

    def codes(self) -> List[str]:
        return [d.code for d in self.events]

    def render(self) -> str:
        s = self.stats
        lines = [
            "service report: "
            f"queue={s.get('queue_depth', 0)} inflight={s.get('inflight', 0)}"
            f" completed={s.get('completed', 0)} failed={s.get('failed', 0)}"
            f" rejected={s.get('rejected_backpressure', 0)}"
            f"+{s.get('rejected_draining', 0)}"
            f" deadline={s.get('deadlines_expired', 0)}",
            f"  single-flight hit rate "
            f"{100.0 * s.get('single_flight_hit_rate', 0.0):.1f}%"
            f" (cache hits {s.get('cache_hits', 0)},"
            f" compiles {s.get('compiles_started', 0)})",
            f"  latency p50 {s.get('p50_latency', 0.0) * 1000:.2f} ms"
            f" p99 {s.get('p99_latency', 0.0) * 1000:.2f} ms"
            f" over {s.get('latency_samples', 0)} sample(s)",
        ]
        for label, n in sorted(s.get("shed", {}).items()):
            lines.append(f"  shed[{label}]: {n}")
        for label, n in sorted(s.get("degradations", {}).items()):
            lines.append(f"  degraded[{label}]: {n}")
        for diag in self.events:
            lines.append("  " + diag.render().splitlines()[0])
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """Stable wire form; :meth:`from_json` inverts it exactly."""
        return {
            "stats": dict(self.stats),
            "requests": [dict(r) for r in self.requests],
            "events": [
                {
                    "code": d.code,
                    "severity": d.severity,
                    "message": d.message,
                }
                for d in self.events
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ServiceReport":
        report = cls(
            requests=[dict(r) for r in data.get("requests", [])],
            stats=dict(data.get("stats", {})),
        )
        for e in data.get("events", []):
            report.events.append(Diagnostic(
                e["code"],
                e.get("message", ""),
                severity=e.get("severity") or REGISTRY[e["code"]].severity,
            ))
        return report
