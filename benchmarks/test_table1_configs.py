"""Table 1 — Gauss-Seidel kernel test-case configurations.

Regenerates the configuration table (paper scale and the scaled-down
sizes this reproduction actually runs) and benchmarks one generated
kernel per case to anchor the absolute numbers.
"""

import pytest

from repro.bench.experiments import KERNEL_CASES, build_mlir_kernel, case_inputs
from repro.bench.harness import format_table, save_results


def _dims(t):
    return " x ".join(str(x) for x in t)


def test_table1_configurations(benchmark):
    rows = []
    data = {}
    for case in KERNEL_CASES.values():
        rows.append(
            [
                case.name,
                _dims(case.paper_domain),
                case.paper_iterations,
                _dims(case.domain),
                case.iterations,
            ]
        )
        data[case.name] = {
            "paper_domain": case.paper_domain,
            "paper_iterations": case.paper_iterations,
            "our_domain": case.domain,
            "our_iterations": case.iterations,
        }
    print()
    print(
        format_table(
            ["Case", "Paper domain", "Paper iters", "Our domain", "Our iters"],
            rows,
            title="Table 1: Gauss-Seidel kernel test case configurations",
        )
    )
    save_results("table1_configs", data)
    # Anchor: one run of the generated 5-point kernel.
    case = KERNEL_CASES["seidel-2D-5pt"]
    kernel = build_mlir_kernel(case)
    x, b = case_inputs(case)
    y0 = x.copy()
    benchmark(lambda: kernel(x, b, y0))


@pytest.mark.parametrize("name", list(KERNEL_CASES))
def test_each_case_compiles_and_runs(benchmark, name):
    case = KERNEL_CASES[name]
    kernel = build_mlir_kernel(case)
    x, b = case_inputs(case)
    y0 = x.copy()
    result = benchmark(lambda: kernel(x, b, y0))
    assert result[0].shape == x.shape
