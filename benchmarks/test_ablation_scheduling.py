"""Design-choice ablation (§5 "Affine Scheduling") — graph scheduling vs
affine scheduling.

The paper chose explicit longest-path graph scheduling (Eq. 3) over a
linear (affine) schedule, noting the affine schedule is latency-optimal
only "up to a constant". This bench computes both schedules on the
sub-domain grids of the kernel cases and compares latency (number of
wavefronts), schedule computation cost, and simulated 44-thread time.
"""

import time

import pytest

from repro.bench.harness import format_table, save_results
from repro.core import scheduling
from repro.machine import XEON_6152, WorkloadProfile, simulate_wavefront_execution

_CASES = [
    ("5pt blocks 32x64", (63, 32), [(-1, 0), (0, -1)]),
    ("9pt blocks 1x128 (row chain)", (200, 32), [(-1, 0), (-1, 1)]),
    ("heat3d blocks", (43, 22, 2), [(-1, 0, 0), (0, -1, 0), (0, 0, -1)]),
    ("diagonal reach-2", (40, 40), [(-1, 2), (0, -1)]),
]


def _simulated(sizes, threads=44):
    profile = WorkloadProfile(
        wavefront_sizes=[int(s) for s in sizes],
        tile_seconds=1e-4,
        tile_bytes=1e4,
        iterations=1,
    )
    return simulate_wavefront_execution(profile, threads, XEON_6152)


def test_graph_vs_affine_scheduling(benchmark):
    def run_all():
        rows = []
        data = {}
        for name, grid, deps in _CASES:
            t0 = time.perf_counter()
            theta_g = scheduling.longest_path_schedule(grid, deps)
            graph_time = time.perf_counter() - t0
            t0 = time.perf_counter()
            theta_a = scheduling.affine_schedule(grid, deps)
            affine_time = time.perf_counter() - t0
            for theta in (theta_g, theta_a):
                scheduling.validate_schedule(
                    grid, deps, *scheduling.wavefront_groups(theta)
                )
            g_off, _ = scheduling.wavefront_groups(theta_g)
            a_off, _ = scheduling.wavefront_groups(theta_a)
            g_lat = scheduling.schedule_latency(g_off)
            a_lat = scheduling.schedule_latency(a_off)
            g_sim = _simulated(scheduling.group_sizes(g_off))
            a_sim = _simulated(scheduling.group_sizes(a_off))
            rows.append(
                [name, g_lat, a_lat, g_sim * 1e3, a_sim * 1e3,
                 graph_time * 1e3, affine_time * 1e3]
            )
            data[name] = {
                "graph_latency": g_lat,
                "affine_latency": a_lat,
                "graph_sim_ms_44thr": g_sim * 1e3,
                "affine_sim_ms_44thr": a_sim * 1e3,
            }
            # The paper's argument: Eq. 3 is latency-optimal.
            assert g_lat <= a_lat
        return rows, data

    rows, data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "case", "graph waves", "affine waves",
                "graph 44thr [ms]", "affine 44thr [ms]",
                "graph calc [ms]", "affine calc [ms]",
            ],
            rows,
            title="Ablation (§5): graph vs affine sub-domain scheduling",
        )
    )
    save_results("ablation_scheduling", data)
