"""PR8 bench: prediction accuracy of the static performance prover.

Cross-validates ``repro.analysis.perf`` three ways, written to
``results/BENCH_pr8_static_cost.json``:

* **rank correlation** — over a Table-2-style tile sweep for heat-3D
  and the LU-SGS symmetric sweeps, the static cost (priced against
  :data:`PY_NUMPY_BACKEND`, the model calibrated to the executor that
  actually runs generated code here) must rank candidates like the
  measured runtimes do: Spearman ρ ≥ 0.8 per case;
* **tile gap** — the tile the static model ranks first must measure
  within 10% of the measured-best tile's runtime;
* **Brent vs simulator** — the prover's wavefront
  :func:`~repro.analysis.perf.wavefront_profile` Brent bound is an
  upper envelope of the machine-model simulator's speedup on the same
  CSR schedule (exact list scheduling can never beat it), and tracks
  it closely when barriers and bandwidth pressure are removed.

``REPRO_BENCH_SMOKE=1`` (the CI mode) shrinks the sweep and repeats and
skips the statistical assertions — measured rank order is not
trustworthy on shared CI runners — while still exercising every code
path and writing the results file.
"""

import dataclasses
import json
import os
import time

import numpy as np

from repro.analysis.perf import (
    predict,
    static_cost,
    wavefront_profile,
)
from repro.bench.harness import RESULTS_DIR, save_results
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_6pt_3d
from repro.core.tiling import legalize_tile_sizes
from repro.machine import (
    XEON_6152,
    WorkloadProfile,
    simulate_wavefront_execution,
)
from repro.machine.model import PY_NUMPY_BACKEND

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Mesh and vector factor shared by both cases (interior 48 = 2 * VF).
DOMAIN = (50, 50, 50)
VF = 24

#: The Table-2-style ladder, spread across the backend's real cost
#: tiers (driven by innermost strip extent): full-width aligned strips
#: (with and without an L1-resident reuse plane, and one L2-spilling
#: point), ragged vector splits, and short-strip tilings. Near-tied
#: candidates are deliberately few — this backend's runtimes plateau,
#: and rank correlation against measurement is only meaningful where
#: runtimes actually differ.
TILE_SWEEP = [
    (4, 8, 48), (8, 48, 48), (48, 48, 48),
    (8, 48, 32), (48, 48, 32),
    (16, 16, 16), (8, 48, 12), (48, 48, 4), (4, 4, 4),
]
SMOKE_SWEEP = [(4, 8, 48), (48, 48, 48), (4, 4, 4), (16, 16, 16)]
ROUNDS = 2 if SMOKE else 7

SPEARMAN_FLOOR = 0.8
GAP_CEILING = 1.10


def _save_section(section, data):
    """Merge one section into BENCH_pr8_static_cost.json (the tests
    fill their sections independently)."""
    path = RESULTS_DIR / "BENCH_pr8_static_cost.json"
    merged = {}
    if path.exists():
        merged = json.loads(path.read_text())
    merged[section] = data
    merged["smoke"] = SMOKE
    save_results("BENCH_pr8_static_cost", merged)


def spearman(a, b):
    """Spearman rank correlation, hand-rolled (no scipy here)."""

    def ranks(values):
        values = np.asarray(values, dtype=float)
        r = np.empty(len(values))
        r[np.argsort(values)] = np.arange(len(values))
        for v in np.unique(values):  # average tied ranks
            mask = values == v
            r[mask] = r[mask].mean()
        return r

    return float(np.corrcoef(ranks(a), ranks(b))[0, 1])


def _case_kernels(symmetric):
    """Compile one kernel per (legalized) sweep tile size."""
    pattern = gauss_seidel_6pt_3d()
    kernels = {}
    for proposed in (SMOKE_SWEEP if SMOKE else TILE_SWEEP):
        tiles = tuple(legalize_tile_sizes(pattern, proposed))
        if tiles in kernels:
            continue
        options = CompileOptions(
            tile_sizes=tiles, vectorize=VF, machine="py-numpy"
        )
        if symmetric:
            module = frontend.build_symmetric_sweep_kernel(
                pattern, DOMAIN, frontend.identity_body(6.0)
            )
            kernel = StencilCompiler(options).compile(
                module, entry="symmetric_kernel"
            )
        else:
            module = frontend.build_stencil_kernel(
                pattern, DOMAIN, frontend.identity_body(6.0), iterations=1
            )
            kernel = StencilCompiler(options).compile(module)
        kernels[tiles] = kernel
    return pattern, kernels


def _measure_interleaved(kernels):
    """Min-of-N per kernel with the candidates interleaved per round, so
    machine-load drift lands on every candidate instead of one."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1,) + DOMAIN)
    b = rng.standard_normal((1,) + DOMAIN)
    best = {tiles: None for tiles in kernels}
    for _ in range(ROUNDS):
        for tiles, kernel in kernels.items():
            start = time.perf_counter()
            kernel(x, b, x.copy())
            elapsed = time.perf_counter() - start
            if best[tiles] is None or elapsed < best[tiles]:
                best[tiles] = elapsed
    return best


def _sweep_case(name, symmetric):
    pattern, kernels = _case_kernels(symmetric)
    measured = _measure_interleaved(kernels)
    sweeps = 2 if symmetric else 1
    rows = []
    for tiles in kernels:
        static_s = sweeps * static_cost(
            pattern, DOMAIN, tiles, machine=PY_NUMPY_BACKEND, vf=VF
        )
        rows.append(
            {
                "tiles": list(tiles),
                "measured_ms": measured[tiles] * 1e3,
                "static_ms": static_s * 1e3,
            }
        )
    measured_s = [r["measured_ms"] for r in rows]
    static_s = [r["static_ms"] for r in rows]
    rho = spearman(measured_s, static_s)
    static_best = rows[int(np.argmin(static_s))]
    measured_best = rows[int(np.argmin(measured_s))]
    gap = static_best["measured_ms"] / measured_best["measured_ms"]
    report = {
        "domain": list(DOMAIN),
        "vf": VF,
        "machine": PY_NUMPY_BACKEND.name,
        "rounds": ROUNDS,
        "sweep": rows,
        "spearman_rho": rho,
        "static_best_tiles": static_best["tiles"],
        "measured_best_tiles": measured_best["tiles"],
        "static_best_measured_ms": static_best["measured_ms"],
        "measured_best_ms": measured_best["measured_ms"],
        "gap_x": gap,
    }
    print(f"\n{name}: static-cost sweep over {len(rows)} tilings")
    for r in sorted(rows, key=lambda r: r["static_ms"]):
        print(
            f"  {'x'.join(map(str, r['tiles'])):>10}  "
            f"static {r['static_ms']:8.2f} ms   "
            f"measured {r['measured_ms']:8.2f} ms"
        )
    print(
        f"  spearman rho {rho:.3f}; static best "
        f"{'x'.join(map(str, static_best['tiles']))} measures "
        f"{gap:.3f}x the measured best"
    )
    _save_section(name, report)
    if not SMOKE:
        assert rho >= SPEARMAN_FLOOR, (
            f"{name}: static-vs-measured Spearman {rho:.3f} < "
            f"{SPEARMAN_FLOOR}"
        )
        assert gap <= GAP_CEILING, (
            f"{name}: static-best tile measures {gap:.3f}x the "
            f"measured best (> {GAP_CEILING}x)"
        )
    return report


def test_heat3d_tile_sweep_rank_correlation():
    _sweep_case("heat-3D", symmetric=False)


def test_lusgs_tile_sweep_rank_correlation():
    _sweep_case("lu-sgs", symmetric=True)


def test_brent_bound_envelopes_simulator():
    """The prover's Brent ceiling vs the simulator on the same CSR
    schedule: an exact list-scheduled executor can approach but never
    beat ``T1 / max(T1/p, T_inf)``."""
    pattern = gauss_seidel_5pt_2d()
    tile_sizes = (32, 64)
    grid = (2000 // 32, 2000 // 64)  # the paper-scale 5pt schedule
    wf = wavefront_profile(pattern, grid, tile_sizes)
    assert wf is not None
    # A frictionless machine: no barriers, no bandwidth ceiling, no
    # remote-NUMA surcharge — the simulator then measures pure
    # barrier-quantized list-scheduling efficiency.
    frictionless = dataclasses.replace(
        XEON_6152,
        barrier_seconds=0.0,
        mem_bw_per_numa=1e18,
        remote_penalty=1.0,
    )
    profile = WorkloadProfile(
        wavefront_sizes=_csr_sizes(pattern, grid, tile_sizes),
        tile_seconds=1e-5,
        tile_bytes=1.0,
    )
    t1 = simulate_wavefront_execution(profile, 1, frictionless)
    points = {}
    for threads in (1, 2, 4, 8, 16, 31, 44):
        sim = t1 / simulate_wavefront_execution(
            profile, threads, frictionless
        )
        ceiling = wf.brent_speedup(threads)
        points[threads] = {"simulated_x": sim, "brent_x": ceiling}
        assert sim <= ceiling * 1.001, (
            f"simulator beat the Brent bound at p={threads}: "
            f"{sim:.2f}x > {ceiling:.2f}x"
        )
        # And the bound is informative: exact list scheduling of these
        # wide wavefronts stays within 30% of it.
        assert sim >= 0.7 * ceiling, (
            f"Brent bound is loose at p={threads}: simulator "
            f"{sim:.2f}x vs ceiling {ceiling:.2f}x"
        )
    print("\nBrent bound vs frictionless simulator (paper-scale 5pt):")
    for threads, row in points.items():
        print(
            f"  p={threads:<3d} simulated {row['simulated_x']:6.2f}x   "
            f"Brent ceiling {row['brent_x']:6.2f}x"
        )
    _save_section(
        "brent_vs_simulator",
        {
            "tile_grid": list(grid),
            "num_tiles": wf.num_tiles,
            "num_groups": wf.num_groups,
            "points": {str(p): row for p, row in points.items()},
        },
    )


def _csr_sizes(pattern, grid, tile_sizes):
    from repro.core import scheduling

    deps = pattern.block_stencil_offsets(tile_sizes)
    offsets, _ = scheduling.compute_parallel_blocks(list(grid), deps)
    return [int(s) for s in scheduling.group_sizes(offsets)]


def test_static_report_matches_simulator_traffic_model():
    """The report's per-tile traffic feeds the simulator's bandwidth
    model: one tile's window bytes on the report equals the
    ``tile_bytes`` a profile built from the same schedule would carry."""
    pattern = gauss_seidel_5pt_2d()
    report = predict(
        pattern, (130, 130), (32, 64), machine=XEON_6152, vf=8
    )
    assert report.wavefront is not None
    # Per-tile window bytes implied by the sweep totals.
    per_tile = report.bytes_l2 / report.num_tiles
    window_cells = report.sweep_window_cells / report.num_tiles
    assert per_tile == window_cells * 3 * 8
    _save_section(
        "traffic_consistency",
        {
            "per_tile_window_bytes": per_tile,
            "num_tiles": report.num_tiles,
            "wavefront_groups": report.wavefront.num_groups,
        },
    )
