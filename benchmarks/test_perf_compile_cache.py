"""PR1 acceptance bench: midend optimizer + compiled-kernel cache.

Two claims, written to ``results/BENCH_pr1_optimizer.json``:

* **cache**: a warm-cache ``StencilCompiler.compile`` (fingerprint the
  unlowered module, hit, return) is >= 10x faster than a cold compile
  (full pass pipeline + emission + exec);
* **optimizer**: the Tr4 heat-3D kernel compiled at ``opt_level=2`` runs
  >= 10% faster than at ``opt_level=0``, with bit-identical output.
"""

import json
import time

import numpy as np

from repro.bench.harness import RESULTS_DIR, save_results, time_callable
from repro.codegen.cache import KernelCache, set_default_cache
from repro.core import frontend
from repro.core.pipeline import StencilCompiler, ablation_options
from repro.core.stencil import gauss_seidel_6pt_3d

#: heat-3D at a bench-friendly scale: every level divides evenly
#: (24 -> 12-sized sub-domains -> 6-sized cache tiles).
DOMAIN = (24, 24, 24)
SUBDOMAINS = (12, 12, 12)
TILES = (6, 6, 6)


def _build_module():
    return frontend.build_stencil_kernel(
        gauss_seidel_6pt_3d(), DOMAIN, frontend.identity_body(7.0)
    )


def _tr4(opt_level):
    options = ablation_options("Tr4", SUBDOMAINS, TILES)
    options.opt_level = opt_level
    options.use_cache = False
    return options


def _inputs(seed=0):
    rng = np.random.default_rng(seed)
    shape = (1,) + DOMAIN
    return rng.standard_normal(shape), rng.standard_normal(shape)


def _save_section(section, data):
    """Merge one section into BENCH_pr1_optimizer.json (the two tests
    run independently; each owns one section of the combined report)."""
    path = RESULTS_DIR / "BENCH_pr1_optimizer.json"
    combined = json.loads(path.read_text()) if path.is_file() else {}
    combined[section] = data
    save_results("BENCH_pr1_optimizer", combined)


def test_warm_cache_compile_at_least_10x_faster():
    previous = set_default_cache(KernelCache())
    try:
        options = ablation_options("Tr4", SUBDOMAINS, TILES)

        def compile_once():
            StencilCompiler(options).compile(_build_module())

        start = time.perf_counter()
        compile_once()  # cold: full pipeline + emission + exec
        cold_s = time.perf_counter() - start
        warm_s = time_callable(compile_once, repeats=5, warmup=1)
        speedup = cold_s / warm_s
        _save_section(
            "kernel_cache",
            {
                "cold_compile_ms": cold_s * 1e3,
                "warm_compile_ms": warm_s * 1e3,
                "speedup": speedup,
                "config": options.describe(),
            },
        )
        print(
            f"\ncompile cold {cold_s * 1e3:.2f} ms, "
            f"warm {warm_s * 1e3:.3f} ms ({speedup:.0f}x)"
        )
        assert speedup >= 10.0
    finally:
        set_default_cache(previous)


def test_opt_level2_at_least_10pct_faster_and_bit_identical():
    k0 = StencilCompiler(_tr4(0)).compile(_build_module())
    k2 = StencilCompiler(_tr4(2)).compile(_build_module())
    x, b = _inputs()

    (out0,) = k0(x, b, x.copy())
    (out2,) = k2(x, b, x.copy())
    assert np.array_equal(out0, out2)  # bit-identical numerics

    y0 = x.copy()
    t0 = time_callable(lambda: k0(x, b, y0), repeats=5, warmup=2)
    t2 = time_callable(lambda: k2(x, b, y0), repeats=5, warmup=2)
    speedup = t0 / t2
    lines0 = len(k0.source.splitlines())
    lines2 = len(k2.source.splitlines())
    _save_section(
        "optimizer",
        {
            "kernel": "heat-3D (Tr4)",
            "domain": list(DOMAIN),
            "opt0_ms": t0 * 1e3,
            "opt2_ms": t2 * 1e3,
            "speedup": speedup,
            "source_lines_opt0": lines0,
            "source_lines_opt2": lines2,
            "bit_identical": True,
        },
    )
    print(
        f"\nheat-3D Tr4 run: O0 {t0 * 1e3:.2f} ms -> O2 {t2 * 1e3:.2f} ms "
        f"({speedup:.2f}x); source {lines0} -> {lines2} lines"
    )
    assert speedup >= 1.10  # >= 10% faster


def test_certificate_memo_cuts_verified_recompile_time():
    """A fingerprint certified clean skips the analysis gate and the
    translation validator on recompile even when the kernel cache
    itself misses (cleared between compiles here): the certified warm
    path must be measurably faster than the cold verified compile."""
    from repro.codegen.certificates import (
        CertificateMemo,
        default_memo,
        set_default_memo,
    )

    prev_cache = set_default_cache(KernelCache())
    prev_memo = set_default_memo(CertificateMemo())
    try:
        options = ablation_options("Tr4", SUBDOMAINS, TILES)
        options.check_level = "after-pipeline"
        options.validate_passes = True

        def compile_once():
            # Kernel cache cleared every time: the pipeline always
            # re-runs; only the memo decides whether verification does.
            set_default_cache(KernelCache())
            StencilCompiler(options).compile(_build_module())

        start = time.perf_counter()
        compile_once()  # cold: gate + validator run
        cold_s = time.perf_counter() - start
        warm_s = time_callable(compile_once, repeats=3, warmup=1)
        speedup = cold_s / warm_s
        stats = default_memo().stats
        _save_section(
            "certificate_memo",
            {
                "cold_verified_compile_ms": cold_s * 1e3,
                "certified_recompile_ms": warm_s * 1e3,
                "speedup": speedup,
                "memo_hits": stats.hits,
                "config": options.describe(),
            },
        )
        print(
            f"\nverified compile cold {cold_s * 1e3:.2f} ms, "
            f"certified warm {warm_s * 1e3:.2f} ms ({speedup:.1f}x); "
            f"memo hits {stats.hits}"
        )
        assert stats.hits >= 1
        # The gate + validator are a large share of a verified compile;
        # skipping them must show up as a real compile-time drop.
        assert speedup >= 1.3
    finally:
        set_default_cache(prev_cache)
        set_default_memo(prev_memo)
