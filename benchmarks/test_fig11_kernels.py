"""Figure 11 — optimization of the four stencil kernels, 1 and 10 threads.

Speedups relative to the sequential baseline for C+Pluto 1, C+Pluto 2 and
MLIR. 1-thread points are real measurements on this machine; 10-thread
points scale them by the simulated parallel efficiency of each
implementation's wavefront schedule at the paper's domain sizes
(see DESIGN.md "Substitutions").

Shape checks (the paper's findings):
* the MLIR-generated kernels consistently outperform Pluto at one thread;
* the gap narrows with threads (bandwidth limits).
"""

import pytest

from repro.bench.experiments import (
    KERNEL_CASES,
    build_mlir_kernel,
    case_inputs,
    measured,
    simulated_speedups,
)
from repro.bench.harness import format_series, save_results


@pytest.mark.parametrize("name", list(KERNEL_CASES))
def test_fig11_case(benchmark, name):
    case = KERNEL_CASES[name]
    m = measured(name)
    speedups = simulated_speedups(case, m, threads=[1, 10])
    series = {
        impl: {f"{p} thr": v for p, v in curve.items()}
        for impl, curve in speedups.items()
    }
    print()
    print(
        format_series(
            "threads",
            {k: {p: v for p, v in curve.items()} for k, curve in speedups.items()},
            title=(
                f"Figure 11 [{name}]: speedup over sequential "
                f"(measured 1 thread, simulated 10 threads)"
            ),
        )
    )
    save_results(
        f"fig11_{name}",
        {impl: curve for impl, curve in speedups.items()},
    )
    # Paper shape: MLIR beats both Pluto configurations at 1 thread
    # (the 9-pt exception in the paper concerns the multithreaded case).
    assert speedups["MLIR"][1] > speedups["C+Pluto 1"][1]
    assert speedups["MLIR"][1] > speedups["C+Pluto 2"][1]
    assert speedups["MLIR"][1] > 1.0  # vectorization pays off

    kernel = build_mlir_kernel(case)
    x, b = case_inputs(case)
    y0 = x.copy()
    benchmark(lambda: kernel(x, b, y0))
