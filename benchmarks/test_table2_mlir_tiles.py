"""Table 2 — autotuned MLIR tile sizes.

Runs the L2-bounded autotuner (§2.1) for every kernel case at our scale
and prints the chosen sizes next to the paper's. The structural
properties the paper highlights must hold: the 9-point case is pinned to
``1 x T`` by the in-place restriction; every choice fits the 1 MiB L2.
"""

import pytest

from repro.bench.experiments import KERNEL_CASES
from repro.bench.harness import format_table, save_results
from repro.core.autotune import autotune
from repro.core.tiling import tile_footprint_bytes
from repro.machine import XEON_6152


def test_table2_autotuned_tile_sizes(benchmark):
    rows = []
    data = {}

    def tune_all():
        results = {}
        for case in KERNEL_CASES.values():
            results[case.name] = autotune(
                case.pattern_factory(),
                case.domain,
                cache_bytes=XEON_6152.l2_bytes,
            )
        return results

    results = benchmark.pedantic(tune_all, rounds=1, iterations=1)
    for case in KERNEL_CASES.values():
        result = results[case.name]
        rows.append(
            [
                case.name,
                " x ".join(map(str, case.paper_mlir_tiles)),
                " x ".join(map(str, result.tile_sizes)),
                result.candidates_tried,
            ]
        )
        data[case.name] = {
            "paper": case.paper_mlir_tiles,
            "tuned": result.tile_sizes,
            "candidates": result.candidates_tried,
        }
        footprint = tile_footprint_bytes(result.tile_sizes, nb_var=1)
        assert footprint <= XEON_6152.l2_bytes
    print()
    print(
        format_table(
            ["Case", "Paper tiles (1-10 thr)", "Tuned tiles (ours)", "Tried"],
            rows,
            title="Table 2: MLIR tile size configurations (autotuned)",
        )
    )
    save_results("table2_mlir_tiles", data)
    # The in-place restriction shows in the tuned result (§2.1).
    assert results["seidel-2D-9pt"].tile_sizes[0] == 1
