"""PR4 bench: per-pass translation-validation overhead.

Measures the cost of ``CompileOptions(validate_passes=True)`` on the two
largest canonical pipelines — heat-3D (Tr4) and the LU-SGS Euler sweeps —
and writes ``results/BENCH_pr4_translation_validate.json``. There is no
speed *bar* here (validation is off by default and CI-only); the bench
asserts the structural claims instead: every pass certifies clean, the
cost is fully attributed to the ``translation-validate`` timing row, and
disabling the option costs nothing.
"""

import dataclasses
import time

from repro.analysis.corpus import build_corpus
from repro.bench.harness import save_results
from repro.core.pipeline import StencilCompiler
from repro.ir import PassManager

#: The two pipelines the overhead is quoted on in EXPERIMENTS.md.
CASES = ("heat3d_implicit", "euler_lusgs")
REPEATS = 3


def _lower(entry, validate):
    options = dataclasses.replace(
        entry.options, validate_passes=validate, use_cache=False
    )
    compiler = StencilCompiler(options)
    start = time.perf_counter()
    compiler.lower(entry.build())
    return time.perf_counter() - start, compiler.pass_manager


def test_validation_overhead_measured_and_certified():
    corpus = build_corpus()
    report = {}
    for stem in CASES:
        entry = corpus[stem][0]
        base_s = min(_lower(entry, False)[0] for _ in range(REPEATS))
        best = None
        for _ in range(REPEATS):
            total_s, pm = _lower(entry, True)
            if best is None or total_s < best[0]:
                best = (total_s, pm)
        total_s, pm = best
        key = PassManager.VALIDATE_TIMING_KEY
        validate_s = pm.timings[key]
        tv = pm.validator
        assert all(c["violations"] == 0 for c in tv.certificates)
        instances = sum(
            s.get("instances", 0) for s in tv.certificates[0]["sites"]
        )
        report[stem] = {
            "pipeline": entry.options.describe(),
            "snapshots": pm.invocations[key],
            "instances_per_snapshot": instances,
            "pipeline_ms_unvalidated": base_s * 1e3,
            "pipeline_ms_validated": total_s * 1e3,
            "validate_ms": validate_s * 1e3,
            "overhead_x": total_s / base_s,
        }
        print(
            f"\n{stem}: pipeline {base_s * 1e3:.1f} ms -> "
            f"{total_s * 1e3:.1f} ms with validation "
            f"({pm.invocations[key]} snapshots, {instances} instances, "
            f"validate {validate_s * 1e3:.1f} ms, "
            f"{total_s / base_s:.1f}x)"
        )
        # The overhead is the validator, not a slowdown of the passes.
        assert validate_s <= total_s
        assert total_s - validate_s <= 3 * base_s + 0.5
    save_results("BENCH_pr4_translation_validate", report)
