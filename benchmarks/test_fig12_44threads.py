"""Figure 12 — autotuned speedup at 44 threads (full machine).

Simulated over the Xeon 6152 model from the same measured 1-thread
kernels as Figure 11. Shape checks: the 9-point case scales worst (its
``1 x T`` sub-domain restriction yields thin wavefronts, §4.1), and NUMA
effects keep every case well below linear scaling.
"""

import pytest

from repro.bench.experiments import KERNEL_CASES, measured, simulated_speedups
from repro.bench.harness import format_table, save_results


def test_fig12_44_threads(benchmark):
    def collect():
        table = {}
        for name, case in KERNEL_CASES.items():
            m = measured(name)
            table[name] = simulated_speedups(case, m, threads=[1, 44])
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    data = {}
    for name in KERNEL_CASES:
        row = [name]
        data[name] = {}
        for impl in ("C+Pluto 1", "C+Pluto 2", "MLIR"):
            value = table[name][impl][44]
            row.append(f"{value:.1f}")
            data[name][impl] = value
        efficiency = table[name]["MLIR"][44] / table[name]["MLIR"][1]
        data[name]["MLIR_parallel_efficiency"] = efficiency
        row.append(f"{efficiency:.1f}x")
        rows.append(row)
    print()
    print(
        format_table(
            ["Case", "C+Pluto 1", "C+Pluto 2", "MLIR", "MLIR par. eff."],
            rows,
            title="Figure 12: simulated autotuned speedup at 44 threads",
        )
    )
    save_results("fig12_44threads", data)
    # Shape: the 9-point kernel has the weakest parallel scaling of the
    # MLIR cases — its 1 x T sub-domains thin out the wavefronts (the
    # paper's stated reason for its low bar in Fig. 12).
    eff = {
        name: data[name]["MLIR_parallel_efficiency"] for name in data
    }
    assert eff["seidel-2D-9pt"] <= min(
        eff["seidel-2D-5pt"], eff["seidel-2D-9pt-2nd"], eff["heat-3D"]
    )
    # Nothing scales linearly to 44 threads.
    assert all(e < 44 for e in eff.values())
