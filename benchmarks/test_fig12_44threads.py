"""Figure 12 — autotuned speedup at 44 threads (full machine).

Every number here is **simulator-predicted**: the Xeon 6152 machine
model extrapolates from the same *measured* 1-thread kernels as
Figure 11 — no 44-thread execution happens (this container cannot run
one). The real multithreaded runtime is benchmarked separately in
``test_pr6_parallel_wavefront.py``, which emits the measured-vs-
predicted comparison table (``BENCH_pr6_parallel_wavefront.json``)
cross-validating this machine model at the thread counts the host can
actually exercise. Shape checks: the 9-point case scales worst (its
``1 x T`` sub-domain restriction yields thin wavefronts, §4.1), and NUMA
effects keep every case well below linear scaling.
"""

import pytest

from repro.bench.experiments import KERNEL_CASES, measured, simulated_speedups
from repro.bench.harness import format_table, save_results


def test_fig12_44_threads(benchmark):
    def collect():
        table = {}
        for name, case in KERNEL_CASES.items():
            m = measured(name)
            table[name] = simulated_speedups(case, m, threads=[1, 44])
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    data = {}
    for name in KERNEL_CASES:
        row = [name]
        data[name] = {}
        for impl in ("C+Pluto 1", "C+Pluto 2", "MLIR"):
            value = table[name][impl][44]
            row.append(f"{value:.1f}")
            data[name][impl] = value
        efficiency = table[name]["MLIR"][44] / table[name]["MLIR"][1]
        data[name]["MLIR_parallel_efficiency"] = efficiency
        row.append(f"{efficiency:.1f}x")
        rows.append(row)
    print()
    print(
        format_table(
            ["Case", "C+Pluto 1", "C+Pluto 2", "MLIR", "MLIR par. eff."],
            rows,
            title="Figure 12: simulator-PREDICTED autotuned speedup at 44 "
                  "threads (no measured execution; see "
                  "BENCH_pr6_parallel_wavefront.json for measured)",
        )
    )
    data["_source"] = (
        "simulator-predicted (Xeon 6152 machine model over measured "
        "1-thread tile times); measured thread scaling lives in "
        "BENCH_pr6_parallel_wavefront.json"
    )
    save_results("fig12_44threads", data)
    # Shape: the 9-point kernel has the weakest parallel scaling of the
    # MLIR cases — its 1 x T sub-domains thin out the wavefronts (the
    # paper's stated reason for its low bar in Fig. 12).
    eff = {
        name: data[name]["MLIR_parallel_efficiency"] for name in KERNEL_CASES
    }
    assert eff["seidel-2D-9pt"] <= min(
        eff["seidel-2D-5pt"], eff["seidel-2D-9pt-2nd"], eff["heat-3D"]
    )
    # Nothing scales linearly to 44 threads.
    assert all(e < 44 for e in eff.values())
