"""PR6 acceptance bench: real multithreaded wavefront execution.

Runs heat-3D and LU-SGS through the compiled parallel runtime at
threads in {1, 2, 4, 8} and writes
``results/BENCH_pr6_parallel_wavefront.json`` with

* **measured** wall-clock and speedup per thread count (bit-identical
  output across all thread counts is asserted, and heat-3D is checked
  against the ``Interpreter(checked=True)`` oracle on a small domain);
* **predicted** speedups from ``repro.machine.simulator`` under two
  machine models: the host-calibrated model (``host_machine_model()``,
  thread counts clamped to the physical cores the process can actually
  use — oversubscribed software threads add no hardware parallelism)
  and the paper's Xeon 6152 (what Fig. 12 extrapolates to).

Agreement between the measured curve and the host-model prediction
validates the simulator's structure at the thread counts this machine
can exercise; the residual gap (the GIL serializing the NumPy-light
block bodies) is quantified and reported as a finding in
EXPERIMENTS.md. The hard speedup criterion (>= 1.8x at 4 threads) only
applies on hosts with >= 4 usable cores; on smaller hosts the
assertion inverts — the measured curve must stay flat, matching the
host model's prediction of no speedup.
"""

import sys

import numpy as np
import pytest

from repro.bench.harness import format_table, save_results, time_callable
from repro.cfdlib import euler
from repro.cfdlib.boundary import add_ghost_layers
from repro.cfdlib.heat import build_heat3d_module, initial_temperature
from repro.cfdlib.lusgs import LUSGSConfig, build_lusgs_module, stable_dt
from repro.cfdlib.mesh import StructuredMesh
from repro.codegen.interpreter import Interpreter
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.machine.model import XEON_6152, host_machine_model
from repro.machine.simulator import (
    WorkloadProfile,
    simulate_wavefront_execution,
)
from repro.runtime.parallel import last_dispatch_stats, num_threads

THREADS = [1, 2, 4, 8]

#: Estimated memory traffic per sub-domain block (read + write of the
#: state arrays); only matters for the bandwidth-saturation term of the
#: simulator, which Python-interpreted tile times never get close to.
BYTES_PER_CELL = 3 * 8


def _heat_case():
    n, steps = 32, 2
    options = CompileOptions(
        subdomain_sizes=(8, 8, 8), tile_sizes=(4, 4, 8), fuse=True,
        vectorize=8, parallel=True, use_cache=False,
    )
    module = build_heat3d_module(n, steps=steps, lam=0.1)
    kernel = StencilCompiler(options).compile(module, entry="heat")
    t0 = initial_temperature(n, seed=11)[None]
    dt0 = np.zeros((1, n, n, n))

    def run():
        return kernel(t0.copy(), dt0.copy())

    cells = 8 * 8 * 8
    return kernel, run, {
        "kernel": "heat-3D",
        "domain": [n, n, n],
        "steps": steps,
        "subdomains": [8, 8, 8],
        "tile_bytes": cells * BYTES_PER_CELL,
    }


def _lusgs_case():
    shape, steps = (12, 12, 12), 2
    mesh = StructuredMesh(shape, extent=(1.0, 1.0, 1.0))
    w0 = euler.density_wave(shape, amplitude=0.05)
    config = LUSGSConfig(mesh=mesh, dt=stable_dt(w0, mesh, cfl=1.0))
    options = CompileOptions(
        subdomain_sizes=(4, 4, 4), vectorize=4, parallel=True,
        use_cache=False,
    )
    kernel = StencilCompiler(options).compile(
        build_lusgs_module(config, steps=steps), entry="lusgs"
    )
    w_padded = add_ghost_layers(w0)

    def run():
        return kernel(w_padded.copy())

    cells = 4 * 4 * 4 * 5  # 5 conserved variables
    return kernel, run, {
        "kernel": "LU-SGS",
        "domain": list(shape),
        "steps": steps,
        "subdomains": [4, 4, 4],
        "tile_bytes": cells * BYTES_PER_CELL,
    }


def _profile(kernel, t1_seconds, tile_bytes):
    """One WorkloadProfile covering every stamped wavefront dispatch of
    the kernel (LU-SGS stamps one schedule per sweep direction), with
    the single-thread tile time back-solved from the measured run."""
    sizes = []
    for stamp in kernel.schedule:
        sizes.extend(int(s) for s in stamp.group_sizes)
    total = sum(sizes)
    return WorkloadProfile(
        wavefront_sizes=sizes,
        tile_seconds=t1_seconds / max(1, total),
        tile_bytes=float(tile_bytes),
        iterations=1,
    )


def _predicted(profile, machine, clamp_cores):
    """Simulated speedup per requested thread count. With
    ``clamp_cores`` the worker count is capped at the machine's cores:
    software oversubscription adds no hardware parallelism, so the
    honest host prediction for 8 threads on a 1-core box is 1.0x."""
    base = simulate_wavefront_execution(profile, 1, machine)
    out = {}
    for t in THREADS:
        workers = min(t, machine.cores) if clamp_cores else t
        out[t] = base / simulate_wavefront_execution(
            profile, workers, machine
        )
    return out


def _measure(kernel, run, meta):
    reference = None
    elapsed = {}
    parallel_groups = {}
    for t in THREADS:
        with num_threads(t):
            result = run()
            stats = last_dispatch_stats()
            elapsed[t] = time_callable(run, repeats=3, warmup=1)
        if t == 1:
            reference = result
            assert stats.parallel_groups == 0
        else:
            # The dispatcher really went multi-threaded...
            assert stats.parallel_groups > 0, f"threads={t}"
            # ...and stayed bit-identical to the sequential run.
            for s, p in zip(reference, result):
                assert np.array_equal(s, p), f"threads={t}"
        parallel_groups[t] = stats.parallel_groups
    return elapsed, parallel_groups


@pytest.mark.parametrize("case", [_heat_case, _lusgs_case])
def test_parallel_wavefront_scaling(case, benchmark):
    kernel, run, meta = case()
    assert kernel.parallel_certified, meta["kernel"]
    assert kernel.schedule, meta["kernel"]

    def collect():
        return _measure(kernel, run, meta)

    elapsed, parallel_groups = benchmark.pedantic(
        collect, rounds=1, iterations=1
    )
    measured = {t: elapsed[1] / elapsed[t] for t in THREADS}

    host = host_machine_model()
    profile = _profile(kernel, elapsed[1], meta["tile_bytes"])
    predicted_host = _predicted(profile, host, clamp_cores=True)
    predicted_xeon = _predicted(profile, XEON_6152, clamp_cores=False)

    rows = [
        [
            t,
            f"{elapsed[t] * 1e3:.2f}",
            f"{measured[t]:.2f}",
            f"{predicted_host[t]:.2f}",
            f"{predicted_xeon[t]:.2f}",
        ]
        for t in THREADS
    ]
    print()
    print(
        format_table(
            ["threads", "ms", "measured", f"pred ({host.cores}-core host)",
             "pred (Xeon 44c)"],
            rows,
            title=f"{meta['kernel']}: measured vs simulator-predicted "
                  "wavefront speedup",
        )
    )

    _merge_section(meta["kernel"], {
        **meta,
        "host_cores": host.cores,
        "host_model": host.name,
        "elapsed_s": {str(t): elapsed[t] for t in THREADS},
        "measured_speedup": {str(t): measured[t] for t in THREADS},
        "predicted_speedup_host": {
            str(t): predicted_host[t] for t in THREADS
        },
        "predicted_speedup_xeon44": {
            str(t): predicted_xeon[t] for t in THREADS
        },
        "parallel_groups_per_run": parallel_groups[max(THREADS)],
        "schedule": [s.to_json() for s in kernel.schedule],
        "max_parallelism": max(
            s.max_parallelism for s in kernel.schedule
        ),
        "bit_identical_across_threads": True,
        "python": sys.version.split()[0],
    })

    if host.cores >= 4:
        # The PR's headline criterion: real hardware parallelism must
        # show up as real measured speedup.
        assert measured[4] >= 1.8, (
            f"{meta['kernel']}: expected >= 1.8x at 4 threads on a "
            f"{host.cores}-core host, measured {measured[4]:.2f}x"
        )
    else:
        # Single-core host: the honest result is a flat curve, and the
        # host-calibrated model must predict exactly that (1.0x at
        # every thread count).  Threading overhead may push the
        # measured curve slightly below 1.0x; a wide band guards the
        # agreement claim without inviting flakes.
        assert all(v == pytest.approx(1.0) for v in predicted_host.values())
        for t in THREADS:
            assert 0.4 <= measured[t] <= 1.4, (
                f"{meta['kernel']}: measured {measured[t]:.2f}x at "
                f"{t} threads is not the flat curve a 1-core host "
                "should produce"
            )


def test_parallel_matches_checked_interpreter_oracle():
    """The bench's correctness anchor: the threaded compiled kernel is
    bit-identical to the checked interpreter on a small heat-3D."""
    n = 8
    module = build_heat3d_module(n, steps=1, lam=0.1)
    t0 = initial_temperature(n, seed=7)[None]
    dt0 = np.zeros((1, n, n, n))
    oracle = Interpreter(module, checked=True).run(
        "heat", t0.copy(), dt0.copy()
    )
    kernel = StencilCompiler(
        CompileOptions(
            subdomain_sizes=(4, 4, 4), parallel=True, vectorize=4,
            use_cache=False,
        )
    ).compile(build_heat3d_module(n, steps=1, lam=0.1), entry="heat")
    assert kernel.parallel_certified
    with num_threads(4):
        got = kernel(t0.copy(), dt0.copy())
    for o, g in zip(oracle, got):
        assert np.array_equal(np.asarray(o), np.asarray(g))
    _merge_section("oracle", {
        "checked_interpreter_bit_identical": True,
        "domain": [n, n, n],
        "threads": 4,
    })


def _merge_section(section, data):
    """The parametrized cases and the oracle test each own one section
    of the combined report."""
    import json

    from repro.bench.harness import RESULTS_DIR

    path = RESULTS_DIR / "BENCH_pr6_parallel_wavefront.json"
    combined = json.loads(path.read_text()) if path.is_file() else {}
    combined[section] = data
    combined["_finding"] = (
        "Measured thread scaling agrees with the host-calibrated "
        "machine model (flat at 1.0x on this single-core container; "
        "the model clamps workers to physical cores). The Xeon 6152 "
        "model predicts real scaling for the same schedules — the "
        "disagreement is fully explained by hardware: this container "
        "exposes one core, and CPython's GIL serializes the "
        "interpreted block bodies besides. See EXPERIMENTS.md."
    )
    save_results("BENCH_pr6_parallel_wavefront", combined)
