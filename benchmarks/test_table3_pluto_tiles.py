"""Table 3 — Pluto tile size configurations.

Autotunes the Pluto-like baseline by measurement over a small candidate
pool (Pluto itself is tuned the same way in the paper) and prints the
chosen sizes against the paper's.
"""

import itertools

import numpy as np
import pytest

from repro.baselines.pluto import PlutoOptions, PlutoStencil
from repro.bench.experiments import KERNEL_CASES
from repro.bench.harness import format_table, save_results, time_callable

_POOL_2D = [(8, 8), (8, 16), (16, 16), (16, 32), (32, 32)]
_POOL_3D = [(4, 8, 8), (4, 8, 16), (4, 16, 16)]


def _tune_case(case):
    pattern = case.pattern_factory()
    rng = np.random.default_rng(0)
    # A reduced domain keeps the measured search cheap.
    domain = tuple(min(n, 64) for n in case.domain)
    u = rng.standard_normal(domain)
    b = rng.standard_normal(domain)
    pool = _POOL_3D if len(domain) == 3 else _POOL_2D
    best, best_t = None, float("inf")
    trace = {}
    for tiles in pool:
        kernel = PlutoStencil(
            pattern, case.d, PlutoOptions(variant=2, tile_sizes=tiles)
        )
        t = time_callable(lambda: kernel.run(u, b, 1), repeats=2, warmup=0)
        trace[tiles] = t
        if t < best_t:
            best, best_t = tiles, t
    return best, trace


def test_table3_pluto_tile_sizes(benchmark):
    rows = []
    data = {}

    def tune_all():
        return {
            name: _tune_case(case) for name, case in KERNEL_CASES.items()
        }

    results = benchmark.pedantic(tune_all, rounds=1, iterations=1)
    for case in KERNEL_CASES.values():
        best, trace = results[case.name]
        rows.append(
            [
                case.name,
                " x ".join(map(str, case.paper_pluto_tiles)),
                " x ".join(map(str, best)),
                len(trace),
            ]
        )
        data[case.name] = {
            "paper": case.paper_pluto_tiles,
            "tuned": best,
            "trace": {str(k): v for k, v in trace.items()},
        }
    print()
    print(
        format_table(
            ["Case", "Paper tiles (1-10 thr)", "Tuned tiles (ours)", "Tried"],
            rows,
            title="Table 3: Pluto tile size configurations (measured tuning)",
        )
    )
    save_results("table3_pluto_tiles", data)
