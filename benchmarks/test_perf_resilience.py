"""PR5 acceptance bench: resilience overhead with faults disabled.

Two claims, written to ``results/BENCH_pr5_resilience.json``:

* **heat-3D**: driving a compile + solve through ``ResilientCompiler``
  (per-pass IR snapshots, guarded execution, no plan installed) costs
  <= 10% end-to-end over the plain ``StencilCompiler`` path;
* **LU-SGS**: the checkpointed driver (``run_checkpointed`` + a
  periodic ``CheckpointManager``) costs <= 10% over the plain
  ``lusgs_reference`` loop.

Both paths also assert bit-identical numerics — resilience must be
free of *semantic* overhead unconditionally.

Timing method: the two variants are sampled in *interleaved* rounds and
compared best-of-N, so a noisy neighbour or a thermal dip hits both
variants alike instead of biasing whichever happened to run second.
"""

import json
import time

import numpy as np

from repro.bench.harness import RESULTS_DIR, save_results
from repro.cfdlib import euler
from repro.cfdlib.lusgs import (
    LUSGSConfig,
    checkpointed_lusgs,
    lusgs_reference,
    stable_dt,
)
from repro.cfdlib.mesh import StructuredMesh
from repro.core import frontend
from repro.core.pipeline import StencilCompiler, ablation_options
from repro.core.stencil import gauss_seidel_6pt_3d
from repro.runtime.resilience.checkpoint import CheckpointManager
from repro.runtime.resilience.driver import ResilientCompiler

DOMAIN = (24, 24, 24)
SUBDOMAINS = (12, 12, 12)
TILES = (6, 6, 6)
#: Kernel executions per timed sample (a solve, not a single sweep —
#: the workload the resilient driver is for; execution dominates the
#: per-pass snapshot cost).
RUNS = 40
MAX_OVERHEAD = 0.10


def _build_module():
    return frontend.build_stencil_kernel(
        gauss_seidel_6pt_3d(), DOMAIN, frontend.identity_body(7.0)
    )


def _options():
    options = ablation_options("Tr4", SUBDOMAINS, TILES)
    options.use_cache = False
    return options


def _inputs(seed=0):
    rng = np.random.default_rng(seed)
    shape = (1,) + DOMAIN
    return rng.standard_normal(shape), rng.standard_normal(shape)


def _interleaved_best(fn_a, fn_b, rounds=6):
    """Best-of-``rounds`` seconds for each callable.

    Samples alternate *and* swap order every round (a-b, b-a, …): a
    fixed order systematically penalizes whichever callable always runs
    second (cache pressure, turbo decay), which showed up as a phantom
    ~10% "overhead" in sequential timing.
    """

    def sample(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    sample(fn_a), sample(fn_b)  # warmup
    a = []
    b = []
    for i in range(rounds):
        if i % 2 == 0:
            a.append(sample(fn_a))
            b.append(sample(fn_b))
        else:
            b.append(sample(fn_b))
            a.append(sample(fn_a))
    return min(a), min(b)


def _save_section(section, data):
    """Merge one section into BENCH_pr5_resilience.json (each test owns
    one section of the combined report)."""
    path = RESULTS_DIR / "BENCH_pr5_resilience.json"
    combined = json.loads(path.read_text()) if path.is_file() else {}
    combined[section] = data
    save_results("BENCH_pr5_resilience", combined)


def test_heat3d_resilient_driver_overhead_within_budget():
    x, b = _inputs()

    def plain():
        kernel = StencilCompiler(_options()).compile(_build_module())
        out = None
        for _ in range(RUNS):
            (out,) = kernel.run(x, b, x.copy())
        return out

    def resilient():
        kernel, report = ResilientCompiler(_options()).compile(
            _build_module()
        )
        assert report.final == "compiled" and not report.events
        out = None
        for _ in range(RUNS):
            (out,) = kernel.run(x, b, x.copy())
        return out

    np.testing.assert_array_equal(plain(), resilient())
    plain_s, resilient_s = _interleaved_best(plain, resilient)
    overhead = resilient_s / plain_s - 1.0
    _save_section(
        "heat3d_resilient_compile_and_run",
        {
            "plain_ms": plain_s * 1e3,
            "resilient_ms": resilient_s * 1e3,
            "overhead_fraction": overhead,
            "runs_per_sample": RUNS,
            "config": _options().describe(),
            "budget": MAX_OVERHEAD,
        },
    )
    print(
        f"\nheat-3D {DOMAIN} Tr4, {RUNS} runs/sample: "
        f"plain {plain_s * 1e3:.1f} ms, resilient {resilient_s * 1e3:.1f} ms "
        f"({overhead * 100:+.1f}% overhead, budget "
        f"{MAX_OVERHEAD * 100:.0f}%)"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"resilient driver overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% with faults disabled"
    )


def test_lusgs_checkpointed_overhead_within_budget(tmp_path):
    mesh = StructuredMesh((12, 12, 12), extent=(1.0, 1.0, 1.0))
    w0 = euler.density_wave((12, 12, 12), amplitude=0.05)
    config = LUSGSConfig(mesh=mesh, dt=stable_dt(w0, mesh, cfl=1.0))
    steps = 8

    def plain():
        return lusgs_reference(w0, config, steps)

    def checkpointed():
        manager = CheckpointManager(every=4, directory=tmp_path / "ck")
        manager.clear()
        return checkpointed_lusgs(w0, config, steps, manager=manager)

    assert np.array_equal(plain(), checkpointed())
    plain_s, checkpointed_s = _interleaved_best(plain, checkpointed)
    overhead = checkpointed_s / plain_s - 1.0
    _save_section(
        "lusgs_checkpointed_solve",
        {
            "plain_ms": plain_s * 1e3,
            "checkpointed_ms": checkpointed_s * 1e3,
            "overhead_fraction": overhead,
            "steps": steps,
            "checkpoint_every": 4,
            "mesh": list(mesh.shape),
            "budget": MAX_OVERHEAD,
        },
    )
    print(
        f"\nLU-SGS {mesh.shape}, {steps} steps, checkpoint every 4: "
        f"plain {plain_s * 1e3:.1f} ms, checkpointed "
        f"{checkpointed_s * 1e3:.1f} ms ({overhead * 100:+.1f}% overhead, "
        f"budget {MAX_OVERHEAD * 100:.0f}%)"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"checkpointed solver overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% with faults disabled"
    )
