"""PR10 acceptance bench: the async compile service.

Three claims, written to ``results/BENCH_pr10_service.json``:

* **warm vs cold**: with ``validate_passes=True`` a warm request (cache
  hit keyed on the pipeline fingerprint) has p50 latency >= 10x faster
  than a cold validated compile;
* **throughput**: sustained requests/s for a cold sweep at 1 worker vs
  2 workers, plus the warm-path throughput ceiling;
* **overhead**: serving one compile through the service (fingerprint,
  admission, single-flight, executor hop) costs <= 10% over calling
  ``ResilientCompiler`` directly, faults off — robustness must be
  near-free on the happy path.

``REPRO_BENCH_SMOKE=1`` (the CI mode) shrinks request counts so the
bench finishes in seconds while still exercising every code path.

Timing method: overhead uses interleaved best-of-N rounds (alternating
order per round) like the PR5 resilience bench, so a noisy neighbour
hits both variants alike.
"""

import asyncio
import json
import os
import time

import numpy as np

from repro.bench.harness import RESULTS_DIR, save_results
from repro.codegen.cache import KernelCache
from repro.codegen.certificates import CertificateMemo, set_default_memo
from repro.core import frontend
from repro.core.pipeline import CompileOptions
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.runtime.resilience.driver import ResilientCompiler
from repro.service import CompileService, ServiceConfig
from repro.service.stats import percentile

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SHAPE = (16, 16)
#: Distinct cold fingerprints per sweep (shape-varied modules).
COLD_N = 4 if SMOKE else 10
#: Warm repetitions against one fingerprint.
WARM_N = 16 if SMOKE else 64
OVERHEAD_ROUNDS = 4 if SMOKE else 8
MAX_OVERHEAD = 0.10
MIN_WARM_SPEEDUP = 10.0

OPTIONS = CompileOptions(
    subdomain_sizes=(8, 8), tile_sizes=(4, 4), fuse=True, vectorize=4,
    check_level="after-pipeline", validate_passes=True,
)


def _module(idx=0):
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (SHAPE[0] + 2 * idx, SHAPE[1]),
        frontend.identity_body(4.0),
    )


def _service(**overrides):
    config = ServiceConfig(**{
        "options": OPTIONS, "max_queue": 2 * COLD_N + 4, **overrides,
    })
    return CompileService(config, cache=KernelCache())


def _save_section(section, data):
    path = RESULTS_DIR / "BENCH_pr10_service.json"
    combined = json.loads(path.read_text()) if path.is_file() else {}
    combined[section] = data
    save_results("BENCH_pr10_service", combined)


def test_warm_p50_at_least_10x_faster_than_cold():
    set_default_memo(CertificateMemo())

    async def scenario():
        svc = _service()
        cold = await asyncio.gather(
            *[svc.compile(_module(i)) for i in range(COLD_N)]
        )
        warm = []
        for _ in range(WARM_N):
            warm.append(await svc.compile(_module(0)))
        await svc.drain()
        return svc, cold, warm

    svc, cold, warm = asyncio.run(scenario())
    assert all(r.ok for r in cold) and all(r.ok for r in warm)
    assert svc.stats.cache_hits >= WARM_N
    cold_p50 = percentile(sorted(r.latency for r in cold), 50)
    warm_p50 = percentile(sorted(r.latency for r in warm), 50)
    speedup = cold_p50 / warm_p50 if warm_p50 else float("inf")
    _save_section("warm_vs_cold", {
        "cold_p50_ms": cold_p50 * 1e3,
        "warm_p50_ms": warm_p50 * 1e3,
        "speedup": speedup,
        "cold_requests": COLD_N,
        "warm_requests": WARM_N,
        "config": OPTIONS.describe(),
        "validate_passes": True,
        "budget_min_speedup": MIN_WARM_SPEEDUP,
        "smoke": SMOKE,
    })
    print(
        f"\nwarm vs cold (validated): cold p50 {cold_p50 * 1e3:.2f} ms, "
        f"warm p50 {warm_p50 * 1e3:.3f} ms -> {speedup:.0f}x"
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm p50 only {speedup:.1f}x faster than cold "
        f"(need >= {MIN_WARM_SPEEDUP}x)"
    )


def test_sustained_throughput_one_vs_two_workers():
    results = {}
    for workers in (1, 2):
        # Fresh certificate memo per configuration: otherwise the first
        # sweep's certificates let the second skip validation entirely.
        set_default_memo(CertificateMemo())
        async def scenario():
            svc = _service(workers=workers)
            start = time.perf_counter()
            cold = await asyncio.gather(
                *[svc.compile(_module(i)) for i in range(COLD_N)]
            )
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            warm = await asyncio.gather(
                *[svc.compile(_module(0)) for _ in range(WARM_N)]
            )
            warm_s = time.perf_counter() - start
            await svc.drain()
            return svc, cold, warm, cold_s, warm_s

        svc, cold, warm, cold_s, warm_s = asyncio.run(scenario())
        assert all(r.ok for r in cold) and all(r.ok for r in warm)
        results[workers] = {
            "cold_req_s": COLD_N / cold_s,
            "warm_req_s": WARM_N / warm_s,
            "cold_wall_s": cold_s,
            "shed": dict(svc.stats.shed),
        }
        print(
            f"\n{workers} worker(s): cold {COLD_N / cold_s:.1f} req/s, "
            f"warm {WARM_N / warm_s:.0f} req/s"
        )
    _save_section("throughput", {
        "workers": results,
        "cold_requests": COLD_N,
        "warm_requests": WARM_N,
        "config": OPTIONS.describe(),
        "smoke": SMOKE,
    })
    # Two workers must not be slower than one on an embarrassingly
    # parallel cold sweep (allow 10% noise; the GIL bounds the upside).
    assert results[2]["cold_req_s"] >= 0.9 * results[1]["cold_req_s"]


def test_service_overhead_vs_direct_driver_within_budget():
    """One uncached compile via the service vs ResilientCompiler
    directly, interleaved best-of rounds, faults off."""
    set_default_memo(CertificateMemo())
    opts = CompileOptions(**{
        **OPTIONS.__dict__, "use_cache": False,
    })
    pristine = print_module(_module(0))

    def direct():
        kernel, report = ResilientCompiler(opts).compile(
            parse_module(pristine)
        )
        assert report.final == "compiled"

    # A persistent service on a persistent loop — the deployed shape.
    # Billing loop startup, thread-pool spawn and drain to a single
    # request would measure lifecycle, not per-request overhead.
    loop = asyncio.new_event_loop()
    svc = CompileService(ServiceConfig(options=opts), cache=KernelCache())

    def served():
        resp = loop.run_until_complete(svc.compile(parse_module(pristine)))
        assert resp.ok and resp.report.final == "compiled"

    def sample(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    sample(direct), sample(served)  # warmup
    direct_s, served_s = [], []
    for i in range(OVERHEAD_ROUNDS):
        if i % 2 == 0:
            direct_s.append(sample(direct))
            served_s.append(sample(served))
        else:
            served_s.append(sample(served))
            direct_s.append(sample(direct))
    loop.run_until_complete(svc.drain())
    loop.close()
    best_direct, best_served = min(direct_s), min(served_s)
    overhead = best_served / best_direct - 1.0
    _save_section("service_overhead", {
        "direct_ms": best_direct * 1e3,
        "served_ms": best_served * 1e3,
        "overhead_fraction": overhead,
        "rounds": OVERHEAD_ROUNDS,
        "config": opts.describe(),
        "budget": MAX_OVERHEAD,
        "smoke": SMOKE,
    })
    print(
        f"\nservice overhead: direct {best_direct * 1e3:.1f} ms, "
        f"served {best_served * 1e3:.1f} ms -> {overhead * 100:+.1f}%"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"service overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% budget"
    )


def test_numerics_unchanged_through_the_service():
    """The served kernel computes exactly what the direct one does."""
    from repro.codegen.interpreter import run_function

    set_default_memo(CertificateMemo())
    rng = np.random.default_rng(0)
    full = (1,) + SHAPE
    x, b = rng.standard_normal(full), rng.standard_normal(full)
    (expected,) = run_function(_module(0), "kernel", x, b, x.copy())

    async def scenario():
        svc = _service()
        resp = await svc.execute(
            _module(0), lambda: (x.copy(), b.copy(), x.copy())
        )
        await svc.drain()
        return resp

    resp = asyncio.run(scenario())
    assert resp.ok
    np.testing.assert_allclose(resp.values[0], expected, rtol=1e-12)
