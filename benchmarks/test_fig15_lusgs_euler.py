"""Figure 15 — LU-SGS for the 3D Euler equations: generated vs elsA-like.

The paper's headline result: the generated implicit solver matches the
manually optimized industrial elsA framework. Here the generated solver
(full pipeline: sub-domain wavefronts + tiling + fusion + partial
vectorization) runs against the hand-optimized NumPy LU-SGS of
:mod:`repro.baselines.elsa` on a periodic density-wave box, reporting the
paper's metric::

    t_cell = threads * elapsed / (iterations * cells)

1-thread points are measured; the thread curves come from the Xeon 6152
simulator with each implementation's sub-domain schedule at the paper's
512^3 scale (elsA plotted up to one socket's 22 cores, as in the paper).
"""

import numpy as np
import pytest

from repro.baselines.elsa import elsa_solve, subdomain_wavefront_sizes
from repro.bench.harness import format_series, save_results, time_callable
from repro.cfdlib import euler
from repro.cfdlib.boundary import add_ghost_layers
from repro.cfdlib.lusgs import (
    LUSGSConfig,
    build_lusgs_module,
    lusgs_reference,
    stable_dt,
)
from repro.cfdlib.mesh import StructuredMesh
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.machine import XEON_6152, WorkloadProfile, simulate_wavefront_execution
from repro.machine.simulator import cell_time_curve

N = 12
STEPS = 2
PAPER_N = 512
PAPER_SUBDOMAINS = (8, 16, 128)
MLIR_THREADS = [1, 2, 4, 8, 16, 22, 32, 40]
ELSA_THREADS = [1, 2, 4, 8, 16, 22]


@pytest.fixture(scope="module")
def setup():
    mesh = StructuredMesh((N, N, N))
    w0 = euler.density_wave((N, N, N), amplitude=0.05)
    config = LUSGSConfig(mesh=mesh, dt=stable_dt(w0, mesh, cfl=1.0))
    return config, w0


#: Hardware anchor: the paper's Fig. 15 curves sit around 0.4 us per
#: cell per iteration at low thread counts; the two implementations keep
#: their measured relative times around that scale.
PAPER_T_CELL = 0.4e-6


def _paper_profile(seconds: float, anchor_seconds: float) -> WorkloadProfile:
    sizes = subdomain_wavefront_sizes(
        [PAPER_N] * 3, list(PAPER_SUBDOMAINS)
    )
    per_cell = PAPER_T_CELL * seconds / anchor_seconds
    tile_cells = 1
    for t in PAPER_SUBDOMAINS:
        tile_cells *= t
    return WorkloadProfile(
        wavefront_sizes=sizes,
        tile_seconds=per_cell * tile_cells,
        tile_bytes=tile_cells * 5 * 3 * 8.0,
        iterations=50,
    )


def test_fig15_lusgs_vs_elsa(benchmark, setup):
    config, w0 = setup

    module = build_lusgs_module(config, steps=STEPS)
    options = CompileOptions(
        subdomain_sizes=(6, 6, 12),
        tile_sizes=(3, 3, 12),
        fuse=True,
        parallel=True,
        vectorize=12,
    )
    kernel = StencilCompiler(options).compile(module, entry="lusgs")
    w_padded = add_ghost_layers(w0)

    # Correctness first: both implementations agree with the reference.
    (generated,) = kernel(w_padded.copy())
    expected = lusgs_reference(w0, config, steps=STEPS)
    inner = (slice(None),) + (slice(1, -1),) * 3
    np.testing.assert_allclose(generated[inner], expected, rtol=1e-8)
    elsa_out = elsa_solve(w0, config, steps=STEPS)
    np.testing.assert_allclose(elsa_out, expected, rtol=1e-8)

    mlir_t = time_callable(lambda: kernel(w_padded.copy()), repeats=2)
    elsa_t = benchmark.pedantic(
        lambda: elsa_solve(w0, config, steps=STEPS), rounds=2, iterations=1
    )
    elsa_t = time_callable(
        lambda: elsa_solve(w0, config, steps=STEPS), repeats=2
    )

    curves = {}
    for name, seconds, threads in (
        ("This paper (generated)", mlir_t, MLIR_THREADS),
        ("elsA (hand-optimized)", elsa_t, ELSA_THREADS),
    ):
        profile = _paper_profile(seconds, elsa_t)
        sim_curve = cell_time_curve(
            profile, XEON_6152, threads, num_cells=PAPER_N**3
        )
        curves[name] = {p: v * 1e6 for p, v in sim_curve.items()}

    print()
    print(
        format_series(
            "threads",
            curves,
            title=(
                "Figure 15: LU-SGS Euler cell time per iteration and "
                "thread [microseconds] (1 thread measured; scaling "
                f"simulated at {PAPER_N}^3)"
            ),
        )
    )
    save_results("fig15_lusgs_euler", curves)

    # Paper shape: generated ~= hand-optimized (same order of magnitude;
    # the paper's curves overlap).
    gen = curves["This paper (generated)"]
    hand = curves["elsA (hand-optimized)"]
    for p in ELSA_THREADS:
        assert 0.2 <= gen[p] / hand[p] <= 5.0
