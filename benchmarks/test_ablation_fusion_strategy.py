"""Design-choice ablation (§2.2) — B recomputed per tile vs precomputed.

The paper chooses to compute B (and D) on the fly per tile, accepting
redundant computation across tile halos in exchange for L2-local reuse.
This bench compares the two strategies on the heat solver: fused
(recompute per tile) vs unfused (B precomputed globally), measured for
real at our scale and simulated at paper scale where the fused variant's
lower memory traffic pays off.
"""

import numpy as np
import pytest

from repro.bench.experiments import BENCH_VF
from repro.bench.harness import format_table, save_results, time_callable
from repro.cfdlib.heat import build_heat3d_module, initial_temperature
from repro.core import scheduling
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.machine import XEON_6152, WorkloadProfile, simulate_wavefront_execution

N = 24
STEPS = 2


def _measure(fuse: bool) -> float:
    module = build_heat3d_module(N, STEPS)
    options = CompileOptions(
        subdomain_sizes=(6, 12, 24),
        tile_sizes=(6, 6, 12) if fuse else None,
        fuse=fuse,
        parallel=True,
        vectorize=BENCH_VF,
    )
    kernel = StencilCompiler(options).compile(module, entry="heat")
    t0 = initial_temperature(N)[None]
    dt0 = np.zeros_like(t0)
    return time_callable(lambda: kernel(t0, dt0), repeats=2)


#: Hardware anchor for the vectorized heat kernel (a few ns per cell on
#: the paper's AVX-512 cores); the two variants keep their measured
#: relative times around it, giving realistic arithmetic intensity.
HW_VECTOR_CELL_SECONDS = 3e-9


def _sim_44(seconds: float, fused: bool, anchor_seconds: float) -> float:
    grid = [max(1, -(-514 // t)) for t in (6, 12, 256)]
    offsets, _ = scheduling.compute_parallel_blocks(
        grid, [(-1, 0, 0), (0, -1, 0), (0, 0, -1)]
    )
    tile_cells = 6 * 12 * 256
    per_cell = HW_VECTOR_CELL_SECONDS * seconds / anchor_seconds
    profile = WorkloadProfile(
        wavefront_sizes=scheduling.group_sizes(offsets),
        tile_seconds=per_cell * tile_cells,
        tile_bytes=tile_cells * (3.0 if fused else 9.0) * 8.0,
        iterations=50,
    )
    one = simulate_wavefront_execution(profile, 1, XEON_6152)
    sim = simulate_wavefront_execution(profile, 44, XEON_6152)
    return one / sim  # parallel efficiency x44


def test_fusion_strategy_ablation(benchmark):
    def run():
        return {"fused": _measure(True), "unfused": _measure(False)}

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    anchor = seconds["unfused"]
    eff = {
        "fused": _sim_44(seconds["fused"], True, anchor),
        "unfused": _sim_44(seconds["unfused"], False, anchor),
    }
    rows = [
        ["recompute B per tile (fused)", seconds["fused"], eff["fused"]],
        ["precompute B globally", seconds["unfused"], eff["unfused"]],
    ]
    print()
    print(
        format_table(
            ["strategy", "measured 1-thread [s]", "simulated 44-thr scaling"],
            rows,
            title="Ablation (§2.2): B recomputation strategy on heat 3D",
        )
    )
    save_results(
        "ablation_fusion_strategy", {"seconds": seconds, "scaling_44": eff}
    )
    # The paper's choice: per-tile recomputation scales better (less
    # memory traffic per sub-domain).
    assert eff["fused"] >= eff["unfused"]
