"""Frontend overhead: what does @stencil's static analysis cost?

The frontend parses the kernel source, runs the full FE001–FE012
analysis (offset resolution, L/U inference, normal-form proof), builds
the IR and cross-checks the emitted pattern against the dependence
engine — all before the compilation pipeline sees anything. This bench
measures that cost against (a) the hand-built IR path it replaces and
(b) one full pipeline compile, to substantiate the EXPERIMENTS.md claim
that analysis overhead is noise relative to compilation.
"""

import textwrap

from repro.bench.harness import format_table, save_results, time_callable
from repro.core import frontend as core_frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.frontend import stencil_from_source

_N = 64

_GS5_SRC = textwrap.dedent(
    """
    def kernel(u, b, i, j):
        u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1]
                   + u[i, j + 1] + u[i + 1, j]) / 4.0
    """
)


def _analyze_and_build():
    program = stencil_from_source(_GS5_SRC)
    return program.build_module((_N, _N))


def _hand_build():
    return core_frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (_N, _N), core_frontend.identity_body(4.0)
    )


def _full_compile():
    module = _analyze_and_build()
    options = CompileOptions(
        subdomain_sizes=(32, 32), tile_sizes=(16, 16), fuse=True,
        vectorize=16, use_cache=False,
    )
    return StencilCompiler(options).compile(module)


def test_frontend_overhead_is_compile_noise():
    t_frontend = time_callable(_analyze_and_build, repeats=5)
    t_hand = time_callable(_hand_build, repeats=5)
    t_compile = time_callable(_full_compile, repeats=3)

    analysis_cost = t_frontend - t_hand
    rows = [
        ("hand-built IR (baseline)", t_hand * 1e3, 1.0),
        ("@stencil analyze + build + FE012", t_frontend * 1e3,
         t_frontend / t_hand),
        ("full pipeline compile", t_compile * 1e3, t_compile / t_hand),
    ]
    print()
    print(format_table(
        ("path", "ms", "x hand-built"), rows,
        title="@stencil frontend overhead (5-point GS, 64x64)",
    ))
    save_results("frontend_overhead", {
        "hand_built_ms": t_hand * 1e3,
        "frontend_ms": t_frontend * 1e3,
        "compile_ms": t_compile * 1e3,
        "analysis_ms": analysis_cost * 1e3,
    })

    # The claim: static analysis costs a small fraction of one compile.
    assert t_frontend < 0.5 * t_compile
