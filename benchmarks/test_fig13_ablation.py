"""Figure 13 — ablation of the transformations on 3D heat Gauss-Seidel.

Four configurations (§4.2):

* Tr1: sub-domain parallelism only;
* Tr2: + tiling & fusion;
* Tr3: Tr1 + vectorization;
* Tr4: everything.

1-thread times are real runs of the compiled configurations at our scale
(24^3); the thread curves list-schedule the compiler's wavefront schedule
at the paper's 514^3 / (6,12,256) sub-domain grid over the Xeon 6152
model. Fused configurations stream each sub-domain once instead of once
per phase, which is what lets them keep scaling past the bandwidth knee
(the paper's Tr2-vs-Tr1 / Tr4-vs-Tr3 observation).
"""

import numpy as np
import pytest

from repro.bench.experiments import BENCH_VF, hw_per_cell
from repro.bench.harness import format_series, save_results, time_callable
from repro.cfdlib.heat import build_heat3d_module, initial_temperature
from repro.core import scheduling
from repro.core.pipeline import StencilCompiler, ablation_options
from repro.machine import XEON_6152, WorkloadProfile, simulate_wavefront_execution

N = 24
STEPS = 2
OUR_SUBDOMAINS = (6, 12, 22)
OUR_TILES = (6, 6, 22)
VF = 22
PAPER_N = 514
PAPER_SUBDOMAINS = (6, 12, 256)
THREADS = [1, 2, 4, 8, 16, 24, 32, 44]
CONFIGS = ("Tr1", "Tr2", "Tr3", "Tr4")


def _measure_config(tr: str) -> float:
    module = build_heat3d_module(N, STEPS)
    options = ablation_options(tr, OUR_SUBDOMAINS, OUR_TILES, vf=VF)
    kernel = StencilCompiler(options).compile(module, entry="heat")
    t0 = initial_temperature(N)[None]
    dt0 = np.zeros_like(t0)
    return time_callable(lambda: kernel(t0, dt0), repeats=2)


def _paper_profile(tr: str, seconds: float, base: float) -> WorkloadProfile:
    grid = [max(1, -(-PAPER_N // t)) for t in PAPER_SUBDOMAINS]
    offsets, _ = scheduling.compute_parallel_blocks(
        grid, [(-1, 0, 0), (0, -1, 0), (0, 0, -1)]
    )
    sizes = scheduling.group_sizes(offsets)
    # Hardware-anchored per-cell cost: Tr1 (scalar, unfused) is the
    # anchor; every configuration keeps its measured ratio to it.
    per_cell = hw_per_cell(seconds, base)
    tile_cells = 1
    for t in PAPER_SUBDOMAINS:
        tile_cells *= t
    fused = tr in ("Tr2", "Tr4")
    streams = 3.0 if fused else 9.0  # 3 tensors once vs 3 tensors x 3 phases
    return WorkloadProfile(
        wavefront_sizes=[int(s) for s in sizes],
        tile_seconds=per_cell * tile_cells,
        tile_bytes=tile_cells * streams * 8.0,
        iterations=50,
    )


def test_fig13_transformation_ablation(benchmark):
    def run_all():
        return {tr: _measure_config(tr) for tr in CONFIGS}

    seconds = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = seconds["Tr1"]
    curves = {}
    for tr in CONFIGS:
        profile = _paper_profile(tr, seconds[tr], base)
        one = simulate_wavefront_execution(profile, 1, XEON_6152)
        curve = {}
        for p in THREADS:
            sim = simulate_wavefront_execution(profile, p, XEON_6152)
            curve[p] = (base / seconds[tr]) * (one / sim)
        curves[tr] = curve
    print()
    print(
        format_series(
            "threads",
            curves,
            title=(
                "Figure 13: speedup vs sequential Tr1 "
                f"(measured at {N}^3, thread scaling simulated at "
                f"{PAPER_N}^3 / {PAPER_SUBDOMAINS})"
            ),
        )
    )
    save_results("fig13_ablation", curves)

    # Paper shapes:
    # vectorization dominates at low thread counts...
    assert curves["Tr3"][1] > 1.5 * curves["Tr1"][1]
    assert curves["Tr4"][1] > 1.5 * curves["Tr2"][1]
    # ... scaling is near-linear early, then hits diminishing returns
    # (Tr1 saturates a NUMA node's bandwidth first; the fused Tr2 keeps
    # near-linear scaling to 8 threads).
    assert curves["Tr1"][4] > 3 * curves["Tr1"][1]
    assert curves["Tr2"][8] > 6 * curves["Tr2"][1]
    for tr in CONFIGS:
        assert curves[tr][44] < 44 * curves[tr][1]
        assert curves[tr][44] / curves[tr][16] < 44 / 16  # knee exists
    # The full pipeline wins at the full machine (within noise).
    assert curves["Tr4"][44] >= 0.9 * max(c[44] for c in curves.values())
    # Fusion improves *scalability*: the fused configurations keep more
    # of their speedup when going wide (Tr2 vs Tr1, Tr4 vs Tr3), the
    # paper's central Fig. 13 observation.
    def scaling(tr):
        return curves[tr][44] / curves[tr][1]

    assert scaling("Tr2") > scaling("Tr1")
    assert scaling("Tr4") > scaling("Tr3")
