"""Design-choice ablation (§2.1 / §5 "Non-rectangular Tiling") — the cost
of the tile-size-1 restriction on the 9-point kernel.

The in-place restriction pins the 9-point kernel's tiles to ``1 x T``
(a cyclic block dependence otherwise — asserted here), which thins the
sub-domain wavefronts and explains its weak multithreaded showing in
Figs. 11/12. This bench quantifies that: wavefront widths and simulated
44-thread efficiency of the restricted 9-point tiling vs the
unrestricted 5-point tiling of the same volume, plus a measured sweep
over the legal ``1 x T`` shapes.
"""

import numpy as np
import pytest

from repro.baselines import naive
from repro.bench.experiments import BENCH_VF
from repro.bench.harness import format_table, save_results, time_callable
from repro.core import frontend, scheduling
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_9pt_2d
from repro.core.tiling import legalize_tile_sizes
from repro.machine import XEON_6152, WorkloadProfile, simulate_wavefront_execution

PAPER_DOMAIN = (4000, 4000)


def _parallel_efficiency(pattern, tiles) -> float:
    grid = [max(1, n // t) for n, t in zip(PAPER_DOMAIN, tiles)]
    deps = pattern.block_stencil_offsets(tiles)
    offsets, _ = scheduling.compute_parallel_blocks(grid, deps)
    profile = WorkloadProfile(
        wavefront_sizes=scheduling.group_sizes(offsets),
        tile_seconds=1e-5,
        tile_bytes=1e3,
        iterations=1,
    )
    one = simulate_wavefront_execution(profile, 1, XEON_6152)
    sim = simulate_wavefront_execution(profile, 44, XEON_6152)
    return one / sim


def _measure_9pt(tiles) -> float:
    pattern = gauss_seidel_9pt_2d()
    module = frontend.build_stencil_kernel(
        pattern, (128, 128), frontend.identity_body(8.0), iterations=2
    )
    kernel = StencilCompiler(
        CompileOptions(tile_sizes=tiles, vectorize=BENCH_VF)
    ).compile(module)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 128, 128))
    b = rng.standard_normal((1, 128, 128))
    return time_callable(lambda: kernel(x, b, x.copy()), repeats=2)


def test_tile_restriction_ablation(benchmark):
    p9 = gauss_seidel_9pt_2d()
    p5 = gauss_seidel_5pt_2d()

    # The restriction is forced: any multi-row tile is illegal for 9pt.
    assert legalize_tile_sizes(p9, (16, 128)) == [1, 128]
    assert (0, 1) in p9.block_stencil_offsets([16, 128])  # the cycle

    def run():
        return {t: _measure_9pt((1, t)) for t in (32, 64, 128)}

    measured_1xt = benchmark.pedantic(run, rounds=1, iterations=1)

    eff_9 = _parallel_efficiency(p9, (1, 128))
    eff_5 = _parallel_efficiency(p5, (32, 64))
    rows = [
        ["9pt, 1x128 (restricted)", f"{eff_9:.1f}x"],
        ["5pt, 32x64 (unrestricted)", f"{eff_5:.1f}x"],
    ]
    print()
    print(
        format_table(
            ["sub-domain shape", "simulated 44-thread scaling"],
            rows,
            title="Ablation (§2.1): cost of the tile-size-1 restriction",
        )
    )
    print(
        format_table(
            ["1xT tile", "measured seconds (128^2, 2 sweeps)"],
            [[f"1x{t}", s] for t, s in measured_1xt.items()],
            title="Legal 9pt tile shapes (measured)",
        )
    )
    save_results(
        "ablation_tile_restriction",
        {
            "scaling_44": {"9pt_1x128": eff_9, "5pt_32x64": eff_5},
            "measured_1xT": {str(k): v for k, v in measured_1xt.items()},
        },
    )
    # The paper's explanation of Fig. 12: the restricted shape scales
    # distinctly worse than an unrestricted one.
    assert eff_5 > eff_9
