"""§4.1 (text) — the out-of-place Jacobi comparison.

"Considering a 5-points Jacobi stencil, MLIR-generated code reaches about
90% of the performance of C+Pluto 1 and 110% of that of C+Pluto 2":
parallelogram tiles do not interfere with vectorizing out-of-place
stencils, so the two approaches tie. Here both implementations vectorize
fully (whole-array NumPy), and the shape check asserts they land within
a factor of two of each other — parity, in contrast to the multiples
separating them on the in-place kernels.
"""

import pytest

from repro.bench.experiments import measure_jacobi, measured
from repro.bench.harness import format_table, save_results


def test_jacobi_parity(benchmark):
    times = benchmark.pedantic(
        lambda: measure_jacobi(n=256, iterations=10), rounds=1, iterations=1
    )
    ratio = times["C+Pluto"] / times["MLIR"]
    print()
    print(
        format_table(
            ["Implementation", "seconds", "relative to Pluto"],
            [
                ["C+Pluto", times["C+Pluto"], 1.0],
                ["MLIR", times["MLIR"], ratio],
            ],
            title=(
                "Jacobi 5-pt out-of-place (§4.1): MLIR vs Pluto "
                "(paper: ~90%-110% of each other)"
            ),
        )
    )
    save_results("jacobi_outofplace", {**times, "mlir_over_pluto": ratio})
    # Parity: within 2x either way (the paper reports 0.9x-1.1x).
    assert 0.5 <= ratio <= 2.0

    # Contrast with the in-place 5-pt kernel, where MLIR wins by a
    # multiple over Pluto (Fig. 11).
    m = measured("seidel-2D-5pt")
    in_place_ratio = m["C+Pluto 2"] / m["MLIR"]
    assert in_place_ratio > ratio
