"""PR7 bench: symbolic (affine) verification vs enumerated, cold compile.

Two claims, written to ``results/BENCH_pr7_symbolic_verify.json``:

* **overhead** — with the affine piece engine as the decision procedure
  (the ``auto`` default), ``validate_passes=True`` costs at most 2× a
  cold unvalidated compile on the two largest canonical pipelines,
  heat-3D (Tr4) and the LU-SGS Euler sweeps — down from 64×/4.9× when
  every statement instance was enumerated (BENCH_pr4);
* **mesh independence** — on a fixed 2×2 tile grid, the symbolic
  validation cost of one tiling snapshot stays flat as the mesh grows
  16× per dimension, while the enumerated engine's cost grows with the
  cell count.
"""

import dataclasses
import gc
import json
import time

from repro.analysis.corpus import build_corpus
from repro.analysis.tv import TranslationValidator
from repro.bench.harness import RESULTS_DIR, save_results
from repro.core import frontend
from repro.core.pipeline import StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.core.tiling import TileStencilsPass
from repro.ir import PassManager

#: The two pipelines the overhead is quoted on in EXPERIMENTS.md.
CASES = ("heat3d_implicit", "euler_lusgs")
REPEATS = 5

#: Mesh edge lengths of the sweep (fixed 2x2 tile grid at every size).
SWEEP_SIZES = (32, 64, 128, 256, 512)
#: Sizes the enumerated engine is also timed on (kept small: its cost is
#: the cell count).
SWEEP_ENUM_SIZES = (32, 64, 128, 256)


def _save_section(section, data):
    """Merge one section into BENCH_pr7_symbolic_verify.json (the two
    tests fill their sections independently)."""
    path = RESULTS_DIR / "BENCH_pr7_symbolic_verify.json"
    merged = {}
    if path.exists():
        merged = json.loads(path.read_text())
    merged[section] = data
    save_results("BENCH_pr7_symbolic_verify", merged)


def _lower(entry, validate):
    options = dataclasses.replace(
        entry.options, validate_passes=validate, use_cache=False
    )
    compiler = StencilCompiler(options)
    module = entry.build()
    # Collect deferred garbage from the previous run outside the timed
    # window, so one draw's allocation backlog cannot land in another's.
    gc.collect()
    start = time.perf_counter()
    compiler.lower(module)
    return time.perf_counter() - start, compiler.pass_manager


def test_symbolic_validation_overhead_within_2x():
    corpus = build_corpus()
    report = {}
    for stem in CASES:
        entry = corpus[stem][0]
        # Interleave the base and validated draws: machine-load drift
        # between two back-to-back min-of-N loops would otherwise bias
        # the ratio either way.
        base_s, best = None, None
        for _ in range(REPEATS):
            b = _lower(entry, False)[0]
            base_s = b if base_s is None else min(base_s, b)
            total_s, pm = _lower(entry, True)
            if best is None or total_s < best[0]:
                best = (total_s, pm)
        total_s, pm = best
        validate_s = pm.timings[PassManager.VALIDATE_TIMING_KEY]
        tv = pm.validator
        assert all(c["violations"] == 0 for c in tv.certificates)
        engines = {
            s.get("engine")
            for c in tv.certificates
            for s in c["sites"]
            if s.get("engine")
        }
        assert engines == {"symbolic"}, (
            f"{stem}: expected all sites symbolic, got {engines}"
        )
        overhead = total_s / base_s
        report[stem] = {
            "pipeline": entry.options.describe(),
            "snapshots": pm.invocations[PassManager.VALIDATE_TIMING_KEY],
            "pipeline_ms_unvalidated": base_s * 1e3,
            "pipeline_ms_validated": total_s * 1e3,
            "validate_ms": validate_s * 1e3,
            "overhead_x": overhead,
        }
        print(
            f"\n{stem}: pipeline {base_s * 1e3:.1f} ms -> "
            f"{total_s * 1e3:.1f} ms with symbolic validation "
            f"(validate {validate_s * 1e3:.1f} ms, {overhead:.2f}x)"
        )
        assert overhead <= 2.0, (
            f"{stem}: symbolic validation overhead {overhead:.2f}x > 2x"
        )
    _save_section("overhead", report)


def _validate_tiling_ms(n, engine):
    """Best-of-N cost of validating one tiling snapshot of an n×n sweep
    over a fixed 2×2 sub-domain grid."""
    best = None
    for _ in range(3):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (n, n), frontend.identity_body(4.0)
        )
        tv = TranslationValidator(fail_fast=False, engine=engine)
        tv.begin(module)
        TileStencilsPass((n // 2, n // 2), with_groups=False, level=0).run(
            module
        )
        start = time.perf_counter()
        tv.after_pass(module, "tile-stencils")
        elapsed = time.perf_counter() - start
        assert not tv.report.has_errors
        best = elapsed if best is None else min(best, elapsed)
    return best * 1e3


def test_mesh_size_sweep_symbolic_cost_is_flat():
    sweep = {
        "sizes": list(SWEEP_SIZES),
        "symbolic_ms": [],
        "enumerated_sizes": list(SWEEP_ENUM_SIZES),
        "enumerated_ms": [],
    }
    for n in SWEEP_SIZES:
        sweep["symbolic_ms"].append(_validate_tiling_ms(n, "symbolic"))
    for n in SWEEP_ENUM_SIZES:
        sweep["enumerated_ms"].append(_validate_tiling_ms(n, "enumerated"))
    print("\nmesh sweep (validate one tiling snapshot, 2x2 tile grid):")
    for i, n in enumerate(SWEEP_SIZES):
        enum = (
            f"{sweep['enumerated_ms'][i]:9.1f}"
            if i < len(SWEEP_ENUM_SIZES)
            else "        -"
        )
        print(
            f"  {n:4d}x{n:<4d} symbolic {sweep['symbolic_ms'][i]:7.1f} ms"
            f"   enumerated {enum} ms"
        )
    # Flatness: 256x growth in cells, bounded growth in symbolic cost.
    flatness = max(sweep["symbolic_ms"]) / max(sweep["symbolic_ms"][0], 1e-9)
    sweep["symbolic_flatness_x"] = flatness
    assert flatness <= 3.0, (
        f"symbolic verification cost grew {flatness:.1f}x across a "
        f"{(SWEEP_SIZES[-1] // SWEEP_SIZES[0]) ** 2}x cell-count sweep"
    )
    # The enumerated engine must visibly scale with the mesh (sanity that
    # the sweep actually measures what it claims).
    assert sweep["enumerated_ms"][-1] > 4 * sweep["enumerated_ms"][0]
    _save_section("mesh_sweep", sweep)
